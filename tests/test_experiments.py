"""Tests for the declarative experiments layer (spec/plan/cache/run)."""

import json

import pytest

from repro.dram.config import QUAD_CORE_2CH
from repro.experiments import (
    ExperimentSpec,
    Plan,
    ResultCache,
    SchemeSpec,
    SpecError,
    load_plan,
    load_spec,
    run_plan,
    run_spec,
)
from repro.sim.runner import simulate_workload, sweep
from repro.workloads.suites import get_workload

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestSchemeSpec:
    def test_defaults_from_registry(self):
        spec = SchemeSpec("sca")
        assert spec.params.n_counters == 64
        assert spec.display_label == "sca"

    def test_create_validates(self):
        with pytest.raises(TypeError, match="valid parameters"):
            SchemeSpec.create("sca", n_wheels=3)

    def test_create_rejects_cross_scheme_legacy_names(self):
        # Unlike legacy make_scheme kwargs, the typed path is strict:
        # PRA's probability on a CAT scheme is an error, not a no-op.
        with pytest.raises(TypeError, match="takes no parameter"):
            SchemeSpec.create("prcat", probability=0.9)
        with pytest.raises(TypeError, match="takes no parameter"):
            SchemeSpec.create("pra", n_counters=999)

    def test_label(self):
        spec = SchemeSpec.create("sca", "SCA_128", n_counters=128)
        assert spec.display_label == "SCA_128"

    def test_wrong_params_type(self):
        from repro.core import PraParams

        with pytest.raises(TypeError, match="expects"):
            SchemeSpec("sca", PraParams())

    def test_round_trip(self):
        spec = SchemeSpec.create("drcat", "D", n_counters=32, max_levels=7)
        assert SchemeSpec.from_dict(spec.to_dict()) == spec


class TestExperimentSpec:
    def test_alias_resolved_on_construction(self):
        assert fast_spec(workload="blackscholes").workload == "black"

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            fast_spec(workload="quake3")

    def test_named_system_validated(self):
        with pytest.raises(SpecError, match="named systems"):
            fast_spec(system="hex-core/9channels")

    def test_attack_needs_kernel_and_mode(self):
        with pytest.raises(SpecError, match="attack"):
            fast_spec(kind="attack")

    def test_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            fast_spec(engine="warp")

    def test_round_trip(self):
        spec = fast_spec(
            scheme=SchemeSpec.create("sca", "SCA_128", n_counters=128),
            refresh_threshold=16384,
        )
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.content_hash() == spec.content_hash()

    def test_round_trip_inline_system(self):
        spec = fast_spec(system=QUAD_CORE_2CH)
        rebuilt = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt == spec
        assert rebuilt.resolve_system() == QUAD_CORE_2CH

    def test_round_trip_inline_workload_model(self):
        from dataclasses import replace

        model = replace(get_workload("black"), intensity=123456.0)
        spec = fast_spec(workload_model=model)
        rebuilt = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt.resolve_workload_model() == model

    def test_inline_system_dict_without_tag(self):
        # Hand-written spec JSON need not know the serializer's
        # "__type__" tag; a plain config object coerces eagerly.
        spec = fast_spec(system={"n_cores": 4, "rows_per_bank": 131072})
        assert spec.resolve_system() == QUAD_CORE_2CH

    def test_malformed_inline_system_fails_at_load(self):
        with pytest.raises(SpecError, match="inline system"):
            fast_spec(system={"warp_drives": 2})

    def test_non_config_system_rejected(self):
        with pytest.raises(SpecError, match="system must be"):
            fast_spec(system=42)

    def test_unknown_field_rejected(self):
        doc = fast_spec().to_dict()
        doc["warp_factor"] = 9
        with pytest.raises(SpecError, match="unknown field"):
            ExperimentSpec.from_dict(doc)

    def test_hash_stable_and_sensitive(self):
        a, b = fast_spec(), fast_spec()
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != fast_spec(seed=1).content_hash()
        assert (
            a.content_hash()
            != fast_spec(engine="scalar").content_hash()
        )
        assert (
            a.content_hash()
            != fast_spec(
                scheme=SchemeSpec.create("drcat", n_counters=32)
            ).content_hash()
        )

    def test_hash_alias_invariant(self):
        assert (
            fast_spec(workload="blackscholes").content_hash()
            == fast_spec(workload="black").content_hash()
        )

    def test_hash_label_invariant(self):
        # The display label cannot change the numbers; labelled bench
        # cells and unlabelled CLI specs must share cache entries.
        labelled = fast_spec(
            scheme=SchemeSpec.create("sca", "SCA_128", n_counters=128)
        )
        bare = fast_spec(
            scheme=SchemeSpec.create("sca", n_counters=128)
        )
        assert labelled.content_hash() == bare.content_hash()

    def test_intensity_scale(self):
        model = fast_spec(intensity_scale=2.0).resolve_workload_model()
        assert model.intensity == get_workload("libq").intensity * 2.0

    def test_spec_file_round_trip(self, tmp_path):
        spec = fast_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        assert load_spec(path) == spec


class TestPlan:
    def test_grid_expansion_order(self):
        plan = Plan.grid(
            fast_spec(),
            scheme=[SchemeSpec.create("sca", "S"),
                    SchemeSpec.create("drcat", "D")],
            workload=["black", "libq"],
        )
        assert plan.keys() == [
            ("black", "S"), ("libq", "S"), ("black", "D"), ("libq", "D"),
        ]

    def test_grid_scalar_axis(self):
        plan = Plan.grid(fast_spec(), refresh_threshold=[32768, 16384])
        assert [s.refresh_threshold for s in plan] == [32768, 16384]

    def test_unknown_axis(self):
        with pytest.raises(SpecError, match="unknown plan axis"):
            Plan.grid(fast_spec(), warp=[1, 2])

    def test_empty_axis(self):
        with pytest.raises(SpecError, match="no values"):
            Plan.grid(fast_spec(), workload=[])

    def test_concat(self):
        a = Plan.grid(fast_spec(), workload=["black"])
        b = Plan.grid(fast_spec(), workload=["libq"])
        assert (a + b).keys() == a.keys() + b.keys()

    def test_round_trip_grid(self):
        plan = Plan.grid(
            fast_spec(),
            scheme=[SchemeSpec.create("sca", "S", n_counters=128)],
            workload=["black", "libq"],
            refresh_threshold=[32768, 16384],
        )
        rebuilt = Plan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.specs == plan.specs
        assert rebuilt.content_hash() == plan.content_hash()

    def test_round_trip_inline_workload_axis(self):
        from dataclasses import replace

        model = replace(get_workload("black"), intensity=2_760_000.0)
        plan = Plan.grid(fast_spec(), workload=[model])
        rebuilt = Plan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt.specs == plan.specs
        assert (
            rebuilt.specs[0].resolve_workload_model().intensity
            == 2_760_000.0
        )

    def test_round_trip_concat_falls_back_to_specs(self, tmp_path):
        plan = Plan.grid(fast_spec(), workload=["black"]) + Plan.grid(
            fast_spec(), workload=["libq"]
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        assert load_plan(path).specs == plan.specs

    def test_summary_is_compact_provenance(self):
        plan = Plan.grid(fast_spec(), workload=["black", "libq"])
        summary = plan.summary()
        assert summary["n_cells"] == 2
        assert summary["plan_hash"] == plan.content_hash()
        json.dumps(summary)  # must be JSON-safe


class TestRunSpecEquivalence:
    """The spec path must be bit-identical to the legacy kwarg path."""

    def test_workload_run(self):
        legacy = simulate_workload("libq", scheme="sca", **FAST)
        via_spec = run_spec(fast_spec(scheme=SchemeSpec("sca")))
        assert legacy.to_dict() == via_spec.to_dict()

    def test_attack_run(self):
        from repro.sim.runner import simulate_attack

        legacy = simulate_attack("kernel03", "light", "drcat", **FAST)
        via_spec = run_spec(fast_spec(
            kind="attack", attack_kernel="kernel03", attack_mode="light",
        ))
        assert legacy.to_dict() == via_spec.to_dict()


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        result = run_spec(spec)
        assert cache.get(spec) is None
        cache.put(spec, result)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.to_dict() == result.to_dict()
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        cache.put(spec, run_spec(spec))
        cache.path_for(spec).write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None
        assert not cache.path_for(spec).exists()  # dropped

    def test_spec_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec, other = fast_spec(), fast_spec(seed=77)
        cache.put(spec, run_spec(spec))
        # Simulate a collision: copy spec's entry to other's slot.
        cache.path_for(other).write_text(
            cache.path_for(spec).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert cache.get(other) is None

    def test_run_plan_uses_cache(self, tmp_path, monkeypatch):
        plan = Plan.grid(fast_spec(), workload=["black", "libq"])
        cache = ResultCache(tmp_path)
        first = run_plan(plan, cache=cache)
        calls = {"n": 0}
        import repro.experiments.run as run_mod

        real = run_mod.run_spec

        def counting(spec):
            calls["n"] += 1
            return real(spec)

        monkeypatch.setattr(run_mod, "run_spec", counting)
        warm_cache = ResultCache(tmp_path)
        second = run_plan(plan, cache=warm_cache)
        assert calls["n"] == 0, "warm plan must not re-simulate"
        assert warm_cache.hits == len(plan)
        assert [a.to_dict() for a in first] == [b.to_dict() for b in second]

    def test_engine_partitions_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = fast_spec()
        cache.put(spec, run_spec(spec))
        assert cache.get(fast_spec(engine="scalar")) is None


class TestSweepPlanPath:
    def test_sweep_accepts_plan(self):
        plan = Plan.grid(
            fast_spec(),
            workload=["black", "libq"],
            scheme=[SchemeSpec("sca"), SchemeSpec("drcat")],
        )
        results = sweep(plan)
        assert set(results) == {
            ("black", "sca"), ("black", "drcat"),
            ("libq", "sca"), ("libq", "drcat"),
        }

    def test_sweep_plan_matches_legacy_sweep(self):
        plan = Plan.grid(
            fast_spec(),
            workload=["libq"],
            scheme=[SchemeSpec("sca"), SchemeSpec("drcat")],
        )
        via_plan = sweep(plan)
        legacy = sweep(workloads=["libq"], schemes=("sca", "drcat"), **FAST)
        assert {
            k: v.to_dict() for k, v in via_plan.items()
        } == {k: v.to_dict() for k, v in legacy.items()}

    def test_sweep_plan_rejects_grid_kwargs(self):
        plan = Plan.grid(fast_spec(), workload=["libq"])
        with pytest.raises(TypeError, match="keyword"):
            sweep(plan, scale=128.0)

    def test_per_cell_run_knobs_via_plan_concat(self):
        # Per-scheme run-knob overrides (the old scheme_overrides use
        # case) are expressed by concatenating per-knob grids.
        plan = Plan.grid(
            fast_spec(refresh_threshold=16384), scheme=[SchemeSpec("sca")]
        ) + Plan.grid(
            fast_spec(refresh_threshold=32768), scheme=[SchemeSpec("drcat")]
        )
        results = sweep(plan)
        assert results[("libq", "sca")].parameters[
            "refresh_threshold"] == 16384
        assert results[("libq", "drcat")].parameters[
            "refresh_threshold"] == 32768
        baseline = simulate_workload(
            "libq", scheme="sca", refresh_threshold=16384, **FAST
        )
        assert (
            results[("libq", "sca")].to_dict() == baseline.to_dict()
        )

    def test_sweep_plan_rejects_schemes_argument(self):
        plan = Plan.grid(fast_spec(), workload=["libq"])
        with pytest.raises(TypeError, match="no schemes argument"):
            sweep(plan, schemes=("sca",))

    def test_sweep_plan_rejects_colliding_keys(self):
        # Axes beyond workload/scheme repeat (workload, label) keys;
        # dict-keyed sweep() must refuse rather than drop cells.
        plan = Plan.grid(
            fast_spec(), workload=["libq"],
            refresh_threshold=[32768, 16384],
        )
        with pytest.raises(ValueError, match="keys repeat"):
            sweep(plan)
        # run_plan is the escape hatch: full per-spec results.
        from repro.experiments import run_plan

        assert len(run_plan(plan)) == 2

    def test_cache_shared_across_labels(self, tmp_path):
        from repro.experiments import ResultCache, run_spec

        cache = ResultCache(tmp_path)
        labelled = fast_spec(
            scheme=SchemeSpec.create("drcat", "DRCAT_64")
        )
        cache.put(labelled, run_spec(labelled))
        bare = fast_spec(scheme=SchemeSpec("drcat"))
        hit = cache.get(bare)
        assert hit is not None
        assert hit.to_dict() == run_spec(bare).to_dict()
