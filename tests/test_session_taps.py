"""Observer-tap isolation: a raising callback must never kill the run.

The server streams runs through Session taps, so a broken observer (a
disconnected SSE bridge, a buggy user callback) aborting the simulation
would turn a client-side problem into a lost result.  The contract: the
offender is logged and detached, the run completes, and the numbers are
bit-identical to an unobserved run.
"""

import logging

import pytest

from repro.api import Session
from repro.experiments import ExperimentSpec, SchemeSpec, run_spec

FAST = dict(scale=128.0, n_banks=1, n_intervals=3)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestEpochTapIsolation:
    def test_raising_tap_does_not_abort_the_run(self):
        session = Session(fast_spec())

        @session.on_epoch
        def bad(event):
            raise RuntimeError("observer bug")

        result = session.result()  # must not raise
        assert result.totals.n_intervals == 3

    def test_raising_tap_is_detached_after_first_failure(self):
        session = Session(fast_spec())
        calls = []

        @session.on_epoch
        def bad(event):
            calls.append(event.epoch)
            raise RuntimeError("observer bug")

        session.result()
        # Detached on its first raise: exactly one delivery, not one
        # per epoch.
        assert len(calls) == 1

    def test_healthy_taps_survive_a_raising_sibling(self):
        session = Session(fast_spec())
        good_epochs = []

        @session.on_epoch
        def bad(event):
            raise RuntimeError("observer bug")

        @session.on_epoch
        def good(event):
            good_epochs.append(event.epoch)

        session.result()
        assert good_epochs == [1, 2, 3]

    def test_result_bit_identical_despite_raising_tap(self):
        spec = fast_spec(seed=11)
        session = Session(spec)

        @session.on_epoch
        def bad(event):
            raise RuntimeError("observer bug")

        assert session.result().to_dict() == run_spec(spec).to_dict()

    def test_offender_is_logged(self, caplog):
        session = Session(fast_spec())

        @session.on_epoch
        def bad(event):
            raise RuntimeError("observer bug")

        with caplog.at_level(logging.ERROR, logger="repro.api"):
            session.result()
        assert any("detaching" in rec.message for rec in caplog.records)
        assert any("on_epoch" in rec.getMessage()
                   for rec in caplog.records)


class TestMitigationTapIsolation:
    @pytest.fixture()
    def busy_spec(self):
        # sca with a low threshold refreshes eagerly, so mitigation
        # taps actually fire on a fast run.
        return fast_spec(scheme=SchemeSpec("sca"), refresh_threshold=512)

    def test_raising_mitigation_tap_does_not_abort(self, busy_spec):
        session = Session(busy_spec)
        fired = []

        @session.on_mitigation
        def bad(event):
            fired.append(event)
            raise RuntimeError("observer bug")

        result = session.result()
        assert fired, "precondition: the tap must have fired at all"
        assert len(fired) == 1  # detached after the first raise
        assert result.to_dict() == run_spec(busy_spec).to_dict()

    def test_healthy_mitigation_tap_unaffected(self, busy_spec):
        session = Session(busy_spec)
        good = []

        @session.on_mitigation
        def bad(event):
            raise RuntimeError("observer bug")

        @session.on_mitigation
        def fine(event):
            good.append(event.rows)

        session.result()
        assert good and all(rows >= 1 for rows in good)
