"""Tests for the CAT tree data structure (Algorithm 1 + Figure 5 layout)."""

import numpy as np
import pytest

from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds


def make_tree(n_rows=1024, t=512, m=8, l=8, weights=False, presplit=None):
    th = SplitThresholds.create(t, m, l, presplit_levels=presplit)
    return CounterTree(n_rows, th, track_weights=weights)


class TestConstruction:
    def test_presplit_counter_count(self):
        tree = make_tree(m=8)  # λ = 3 -> 4 leaves
        assert tree.active_counters == 4
        assert tree.free_counters == 4

    def test_presplit_partition_is_uniform(self):
        tree = make_tree(n_rows=1024, m=8)
        parts = tree.partition()
        widths = {hi - lo + 1 for lo, hi, _ in parts}
        assert widths == {256}

    def test_presplit_lambda_one_is_single_root(self):
        tree = make_tree(m=8, presplit=1)
        assert tree.active_counters == 1
        lo, hi, _ = tree.partition()[0]
        assert (lo, hi) == (0, 1023)

    def test_invariants_hold_initially(self):
        make_tree().check_invariants()

    def test_rejects_non_power_of_two_rows(self):
        th = SplitThresholds.create(512, 8, 8)
        with pytest.raises(ValueError):
            CounterTree(1000, th)

    def test_rejects_depth_beyond_rows(self):
        th = SplitThresholds.create(512, 8, 8)
        with pytest.raises(ValueError):
            CounterTree(64, th)  # 2^(8-1) = 128 > 64


class TestLookup:
    def test_lookup_matches_partition(self):
        tree = make_tree()
        for row in (0, 100, 255, 256, 511, 512, 1023):
            idx = tree.lookup(row)
            state = tree.counter_state(idx)
            assert state["low"] <= row <= state["high"]

    def test_lookup_every_row_covered_exactly_once(self):
        tree = make_tree(n_rows=256, t=64, m=8, l=7)
        rng = np.random.default_rng(0)
        for row in rng.integers(0, 256, size=2000):
            tree.access(int(row))
        counts = {}
        for row in range(256):
            idx = tree.lookup(row)
            counts.setdefault(idx, 0)
            counts[idx] += 1
        for lo, hi, idx in tree.partition():
            assert counts[idx] == hi - lo + 1


class TestSplitting:
    def test_split_on_threshold(self):
        tree = make_tree(n_rows=1024, t=512, m=8, l=8)
        t0 = tree.thresholds.threshold_for_level(2)  # presplit level λ-1=2
        before = tree.active_counters
        for _ in range(t0):
            tree.access(5)
        assert tree.active_counters == before + 1
        tree.check_invariants()

    def test_split_clones_count(self):
        tree = make_tree(n_rows=1024, t=512, m=8, l=8)
        t0 = tree.thresholds.threshold_for_level(2)
        for _ in range(t0):
            tree.access(5)
        idx = tree.lookup(5)
        sibling = tree.lookup(5 + 128)  # other half of the split range
        assert tree.counter_state(idx)["count"] == t0
        assert tree.counter_state(sibling)["count"] == t0

    def test_split_halves_range(self):
        tree = make_tree(n_rows=1024, t=512, m=8, l=8)
        t0 = tree.thresholds.threshold_for_level(2)
        lo_before = tree.counter_state(tree.lookup(5))["low"]
        hi_before = tree.counter_state(tree.lookup(5))["high"]
        for _ in range(t0):
            tree.access(5)
        state = tree.counter_state(tree.lookup(5))
        assert state["low"] == lo_before
        assert state["high"] == (lo_before + hi_before) // 2

    def test_growth_stops_at_max_level(self):
        tree = make_tree(n_rows=1024, t=512, m=64, l=7)
        for _ in range(20000):
            cmd = tree.access(3)
        hist = tree.depth_histogram()
        assert max(hist) <= 6

    def test_growth_stops_when_pool_exhausted(self):
        tree = make_tree(n_rows=1024, t=512, m=8, l=10)
        rng = np.random.default_rng(1)
        for row in rng.integers(0, 1024, size=30000):
            tree.access(int(row))
        assert tree.active_counters <= 8
        tree.check_invariants()


class TestRefresh:
    def test_refresh_at_threshold_resets_counter(self):
        tree = make_tree(n_rows=1024, t=64, m=4, l=4)
        cmds = [tree.access(700) for _ in range(200)]
        fired = [c for c in cmds if c is not None]
        assert fired, "expected at least one refresh"
        assert tree.counter_state(tree.lookup(700))["count"] < 64

    def test_refresh_range_includes_adjacent_rows(self):
        tree = make_tree(n_rows=1024, t=64, m=4, l=4)
        fired = None
        for _ in range(200):
            cmd = tree.access(700)
            if cmd is not None:
                fired = cmd
                break
        state = tree.counter_state(tree.lookup(700))
        assert fired.low == state["low"] - 1
        assert fired.high == state["high"] + 1

    def test_refresh_command_totals_accumulate(self):
        tree = make_tree(n_rows=1024, t=64, m=4, l=4)
        for _ in range(300):
            tree.access(10)
        assert tree.total_refresh_commands >= 2
        assert tree.total_rows_refreshed > 0

    def test_row_zero_refresh_clamps(self):
        tree = make_tree(n_rows=1024, t=64, m=4, l=4)
        for _ in range(300):
            cmd = tree.access(0)
            if cmd is not None:
                assert cmd.row_count(1024) == cmd.clamped(1024).high + 1


class TestAdaptivity:
    def test_uniform_access_builds_balanced_tree(self):
        tree = make_tree(n_rows=4096, t=256, m=16, l=10)
        rng = np.random.default_rng(42)
        for row in rng.integers(0, 4096, size=60000):
            tree.access(int(row))
        assert tree.is_balanced()
        assert tree.active_counters == 16

    def test_biased_access_builds_unbalanced_tree(self):
        tree = make_tree(n_rows=4096, t=256, m=16, l=10)
        rng = np.random.default_rng(42)
        for _ in range(60000):
            if rng.random() < 0.8:
                row = 17  # single aggressor
            else:
                row = int(rng.integers(0, 4096))
            tree.access(row)
        hist = tree.depth_histogram()
        assert not tree.is_balanced()
        # the aggressor's counter should be deep (small group)
        agg_state = tree.counter_state(tree.lookup(17))
        assert agg_state["level"] == max(hist)

    def test_hot_rows_get_smaller_groups_than_cold(self):
        tree = make_tree(n_rows=4096, t=256, m=16, l=10)
        rng = np.random.default_rng(3)
        for _ in range(60000):
            row = 100 if rng.random() < 0.7 else int(rng.integers(2048, 4096))
            tree.access(row)
        hot = tree.counter_state(tree.lookup(100))
        cold = tree.counter_state(tree.lookup(1500))
        hot_size = hot["high"] - hot["low"] + 1
        cold_size = cold["high"] - cold["low"] + 1
        assert hot_size < cold_size


class TestReset:
    def test_reset_restores_presplit(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=8)
        rng = np.random.default_rng(9)
        for row in rng.integers(0, 1024, size=5000):
            tree.access(int(row))
        tree.reset()
        assert tree.active_counters == 4
        assert all(tree.counter_state(i)["count"] == 0 for i in range(8))
        tree.check_invariants()

    def test_reset_clears_weights(self):
        tree = make_tree(n_rows=1024, t=64, m=8, l=8, weights=True)
        for _ in range(500):
            tree.access(3)
        tree.reset()
        assert all(tree.counter_state(i)["weight"] == 0 for i in range(8))


class TestSRAMAccounting:
    def test_sram_reads_grow_with_depth(self):
        tree = make_tree(n_rows=4096, t=256, m=16, l=10)
        shallow_reads = tree.total_sram_reads
        tree.lookup(0)
        shallow_cost = tree.total_sram_reads - shallow_reads
        rng = np.random.default_rng(5)
        for _ in range(40000):
            tree.access(7 if rng.random() < 0.8 else int(rng.integers(0, 4096)))
        before = tree.total_sram_reads
        tree.lookup(7)
        deep_cost = tree.total_sram_reads - before
        assert deep_cost > shallow_cost
