"""Tests for fault-tolerant sweep execution (run_plan's scheduler).

Per-cell isolation, the retry budget, keep_going reporting, pool
breakage and timeout recovery, signal handling, and crash-safe resume
against the result cache.
"""

import os
import signal
import time

import pytest

import repro.experiments.run as run_mod
from repro.errors import CellExecutionError
from repro.experiments import (
    ExperimentSpec,
    Plan,
    ResultCache,
    SchemeSpec,
    SweepReport,
    run_plan,
)
from repro.experiments.run import SweepPool, _backoff_s, _sigterm_as_interrupt
from repro.testing.faults import ENV_VAR, ROUND_VAR, reset_faults

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def small_plan():
    return Plan.grid(
        fast_spec(),
        workload=["libq", "black"],
        scheme=[SchemeSpec("sca"), SchemeSpec("drcat")],
    )


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(ROUND_VAR, raising=False)
    reset_faults()
    yield
    reset_faults()


def poison(workload, exc_factory):
    """A ``_pool_cell`` stand-in that fails cells of one workload."""
    real = run_mod.run_spec

    def cell(spec):
        if spec.workload == workload:
            raise exc_factory()
        return real(spec)

    return cell


class TestIsolationAndRetry:
    def test_fatal_cell_is_isolated_and_not_retried(self, monkeypatch):
        monkeypatch.setattr(
            run_mod, "_pool_cell", poison("black", lambda: ValueError("bug"))
        )
        report = run_plan(small_plan(), keep_going=True, max_retries=3)
        assert isinstance(report, SweepReport)
        assert not report.ok
        assert report.counts() == {"ok": 2, "failed": 2}
        for cell in report.failed:
            assert cell.attempts == 1  # fatal: no retry budget spent
            assert not cell.failures[0].retryable
            assert report.results[cell.index] is None
        for cell in report.cells:
            if cell.status == "ok":
                assert report.results[cell.index] is not None

    def test_transient_cell_is_retried_to_success(self, monkeypatch):
        real = run_mod.run_spec
        calls = {"n": 0}

        def flaky(spec):
            if spec.workload == "black" and calls["n"] < 2:
                calls["n"] += 1
                raise OSError("transient store trouble")
            return real(spec)

        monkeypatch.setattr(run_mod, "_pool_cell", flaky)
        report = run_plan(small_plan(), keep_going=True, max_retries=2)
        assert report.ok
        retried = [c for c in report.cells if c.attempts > 1]
        # Both "black" cells burned one transient failure each, then
        # succeeded on their retry.
        assert len(retried) == 2
        assert all(c.attempts == 2 for c in retried)
        assert calls["n"] == 2

    def test_retry_budget_exhaustion_fails_cell(self, monkeypatch):
        monkeypatch.setattr(
            run_mod, "_pool_cell", poison("black", lambda: OSError("always"))
        )
        report = run_plan(small_plan(), keep_going=True, max_retries=1)
        assert report.counts() == {"ok": 2, "failed": 2}
        for cell in report.failed:
            assert cell.attempts == 2  # initial + 1 retry
            assert len(cell.failures) == 2
            assert all(f.retryable for f in cell.failures)

    def test_without_keep_going_raises_with_report(self, monkeypatch):
        monkeypatch.setattr(
            run_mod, "_pool_cell", poison("black", lambda: ValueError("bug"))
        )
        with pytest.raises(CellExecutionError) as excinfo:
            run_plan(small_plan(), max_retries=0)
        err = excinfo.value
        assert "black/" in str(err)
        assert err.report is not None
        # Completed cells remain inspectable on the attached report.
        assert err.report.counts()["ok"] == 2

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            run_plan(small_plan(), max_retries=-1)

    def test_report_serializes(self, monkeypatch):
        import json

        monkeypatch.setattr(
            run_mod, "_pool_cell", poison("black", lambda: OSError("x"))
        )
        report = run_plan(small_plan(), keep_going=True, max_retries=0)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["kind"] == "repro-sweep-report"
        assert doc["ok"] is False
        assert doc["counts"] == {"ok": 2, "failed": 2}
        assert len(doc["cells"]) == 4
        failed = [c for c in doc["cells"] if c["status"] == "failed"]
        assert failed[0]["failures"][0]["error_type"] == "OSError"

    def test_backoff_is_deterministic_and_bounded(self):
        for round_no in (1, 2, 3, 8):
            delay = _backoff_s(round_no, salt=7)
            assert delay == _backoff_s(round_no, salt=7)
            assert 0 < delay < run_mod._BACKOFF_CAP_S * 1.5


class TestKeepGoingReporting:
    def test_all_ok_report(self):
        report = run_plan(small_plan(), keep_going=True)
        assert report.ok
        assert report.counts() == {"ok": 4}
        assert report.total_attempts() == 4
        assert report.failure_rows() == []

    def test_cached_cells_reported(self, tmp_path):
        cache = ResultCache(tmp_path)
        baseline = run_plan(small_plan(), cache=cache)
        report = run_plan(small_plan(), cache=cache, keep_going=True)
        assert report.counts() == {"cached": 4}
        assert report.total_attempts() == 0
        assert [r.to_dict() for r in report.results] == \
            [r.to_dict() for r in baseline]


class TestCrashSafeResume:
    def test_completed_cells_survive_and_resume_from_cache(
        self, monkeypatch, tmp_path
    ):
        baseline = [r.to_dict() for r in run_plan(small_plan())]

        # First sweep: one workload's cells die permanently; the other
        # cells must still land in the cache *despite* the failures.
        monkeypatch.setattr(
            run_mod, "_pool_cell", poison("black", lambda: OSError("die"))
        )
        first = ResultCache(tmp_path)
        report = run_plan(
            small_plan(), cache=first, keep_going=True, max_retries=0
        )
        assert report.counts() == {"ok": 2, "failed": 2}

        # Second sweep, fresh cache handle, failures gone: only the
        # two unfinished cells are recomputed.
        monkeypatch.undo()
        second = ResultCache(tmp_path)
        results = run_plan(small_plan(), cache=second)
        assert second.hits == 2
        assert second.misses == 2
        assert [r.to_dict() for r in results] == baseline

    def test_flush_failure_does_not_lose_the_result(
        self, monkeypatch, tmp_path
    ):
        cache = ResultCache(tmp_path)

        def broken_put(spec, result):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "put", broken_put)
        results = run_plan(small_plan(), cache=cache)
        assert all(r is not None for r in results)


class TestPoolRecovery:
    def test_broken_pool_is_rebuilt_and_cells_rescheduled(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_TRACE_STORE_DIR", str(tmp_path / "traces")
        )
        baseline = [r.to_dict() for r in run_plan(small_plan())]
        monkeypatch.setenv(ENV_VAR, "pool.worker:kill-worker:77")
        reset_faults()
        SweepPool.shutdown()
        try:
            report = run_plan(
                small_plan(), workers=2, keep_going=True, max_retries=2
            )
        finally:
            SweepPool.shutdown()
        assert report.ok, report.failure_rows()
        assert [r.to_dict() for r in report.results] == baseline
        # At least one chunk rode through the broken pool and retried.
        assert report.total_attempts() > 4

    def test_hung_chunk_times_out_and_pool_is_killed(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(
            "REPRO_TRACE_STORE_DIR", str(tmp_path / "traces")
        )
        monkeypatch.setattr(run_mod, "_TIMEOUT_GRACE_S", 0.0)
        SweepPool.shutdown()
        try:
            report = run_plan(
                small_plan(), workers=2, keep_going=True,
                max_retries=0, cell_timeout=1e-4,
            )
        finally:
            SweepPool.shutdown()
        assert not report.ok
        for cell in report.failed:
            assert cell.failures[-1].error_type == "CellTimeout"
            assert cell.failures[-1].retryable
        # The hung pool was killed, not left behind.
        assert SweepPool.width() == 0

    def test_shutdown_cancels_queued_futures(self):
        SweepPool.shutdown()
        pool = SweepPool.get(1)
        running = pool.submit(time.sleep, 0.6)
        queued = [pool.submit(time.sleep, 0.6) for _ in range(4)]
        t0 = time.perf_counter()
        SweepPool.shutdown()
        elapsed = time.perf_counter() - t0
        # Serial execution of the backlog would take ~3s; cancellation
        # must bound teardown to roughly the one running task.
        assert elapsed < 2.0
        assert any(f.cancelled() for f in queued)
        assert running.done()
        assert SweepPool.width() == 0


class TestSignalHandling:
    def test_sigterm_is_delivered_as_keyboard_interrupt(self):
        previous = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with _sigterm_as_interrupt():
                os.kill(os.getpid(), signal.SIGTERM)
                # The interpreter raises at the next bytecode check.
                time.sleep(1.0)
                pytest.fail("SIGTERM was not delivered")
        assert signal.getsignal(signal.SIGTERM) == previous
