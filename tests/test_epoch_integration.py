"""Epoch-boundary integration: CAT schemes inside the memory system."""

import numpy as np

from repro.core.cat import PRCATScheme
from repro.core.drcat import DRCATScheme
from repro.dram.config import SystemConfig
from repro.dram.memory_system import MemorySystem


def small_config():
    return SystemConfig(rows_per_bank=4096)


def drive(system, n_accesses, duration_ns, hot=7, hot_frac=0.6, seed=0):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0, duration_ns, size=n_accesses))
    for t in times:
        if rng.random() < hot_frac:
            row = hot
        else:
            row = int(rng.integers(0, 4096))
        system.access(float(t), 0, row)


class TestPRCATEpochs:
    def test_tree_resets_every_epoch(self):
        epoch_s = 1e-5  # 10 us epochs for a fast test
        system = MemorySystem(
            small_config(),
            lambda n: PRCATScheme(n, 256, n_counters=16, max_levels=10),
            epoch_s=epoch_s,
        )
        drive(system, 4000, 3 * epoch_s * 1e9)
        scheme = system.schemes[0]
        assert scheme.stats.resets >= 2

    def test_tree_regrows_after_reset(self):
        epoch_s = 1e-5
        system = MemorySystem(
            small_config(),
            lambda n: PRCATScheme(n, 256, n_counters=16, max_levels=10),
            epoch_s=epoch_s,
        )
        drive(system, 6000, 2 * epoch_s * 1e9)
        scheme = system.schemes[0]
        # Crossing into epoch 2 reset the tree; the hot row was re-split.
        state = scheme.tree.counter_state(scheme.tree.lookup(7))
        assert state["high"] - state["low"] + 1 < 4096 // 8


class TestDRCATEpochs:
    def test_shape_survives_epochs(self):
        epoch_s = 1e-5
        system = MemorySystem(
            small_config(),
            lambda n: DRCATScheme(n, 256, n_counters=16, max_levels=10),
            epoch_s=epoch_s,
        )
        drive(system, 6000, 3 * epoch_s * 1e9)
        scheme = system.schemes[0]
        assert scheme.stats.resets >= 2
        # DRCAT carries the learned structure across epochs.
        assert scheme.tree.active_counters > 8
        scheme.tree.check_invariants()

    def test_invariants_after_long_multi_epoch_run(self):
        epoch_s = 5e-6
        system = MemorySystem(
            small_config(),
            lambda n: DRCATScheme(n, 128, n_counters=16, max_levels=11),
            epoch_s=epoch_s,
        )
        rng = np.random.default_rng(5)
        duration = 8 * epoch_s * 1e9
        times = np.sort(rng.uniform(0, duration, size=8000))
        hots = [100, 2000, 3900]
        for i, t in enumerate(times):
            hot = hots[(i * 3) // len(times)]
            row = hot if rng.random() < 0.6 else int(rng.integers(0, 4096))
            system.access(float(t), 0, row)
        scheme = system.schemes[0]
        scheme.tree.check_invariants()
        assert system.total_rows_refreshed == scheme.stats.rows_refreshed
