"""Tests for the Section IV-D refresh-cost model."""

import pytest

from repro.analysis.cost_model import (
    TreeShapeCost,
    cost_cat,
    cost_sca,
    critical_bias,
    derive_split_thresholds,
)


class TestClosedForms:
    def test_cost_sca_formula(self):
        # Eq. 2: w * R / T
        assert cost_sca(16384, 655360, 32768) == pytest.approx(327680.0)

    def test_critical_bias_is_three_w(self):
        assert critical_bias(100.0) == 300.0

    def test_costs_equal_at_critical_bias(self):
        """Eq. 4: CostCAT == CostSCA exactly at x = 3w."""
        w, r, t = 1000.0, 1e6, 32768.0
        x = critical_bias(w)
        assert cost_cat(w, x, r, t) == pytest.approx(cost_sca(w, r, t), rel=1e-9)

    def test_cat_wins_above_critical_bias(self):
        w, r, t = 1000.0, 1e6, 32768.0
        assert cost_cat(w, 5 * w, r, t) < cost_sca(w, r, t)

    def test_sca_wins_below_critical_bias(self):
        w, r, t = 1000.0, 1e6, 32768.0
        assert cost_cat(w, 1 * w, r, t) > cost_sca(w, r, t)


class TestTreeShapeCost:
    def test_balanced_tree_matches_cost_sca(self):
        n = 4096
        shape = TreeShapeCost(n, levels=(2, 2, 2, 2), shares=(0.25,) * 4)
        r, t = 1e6, 32768.0
        assert shape.rows_refreshed(r, t) == pytest.approx(cost_sca(n / 4, r, t))

    def test_rejects_non_tiling_levels(self):
        with pytest.raises(ValueError):
            TreeShapeCost(1024, levels=(1, 2), shares=(0.5, 0.5))

    def test_rejects_bad_shares(self):
        with pytest.raises(ValueError):
            TreeShapeCost(1024, levels=(1, 2, 2), shares=(0.5, 0.2, 0.2))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            TreeShapeCost(1024, levels=(1, 1), shares=(1.0,))

    def test_deep_hot_leaf_cheaper_under_bias(self):
        """A deep leaf absorbing a hot share refreshes fewer rows."""
        n, r, t = 4096, 1e6, 4096.0
        balanced = TreeShapeCost(n, (2, 2, 2, 2), (0.25,) * 4)
        unbalanced = TreeShapeCost(
            n, levels=(1, 2, 3, 3), shares=(0.2, 0.1, 0.05, 0.65)
        )
        assert unbalanced.rows_refreshed(r, t) < balanced.rows_refreshed(r, t)


class TestDeriveSplitThresholds:
    def test_terminates_at_t_and_half(self):
        values = derive_split_thresholds(32768, 64, 11)
        assert values[-1] == 32768
        assert values[-2] == 16384

    def test_close_to_paper_anchor(self):
        values = derive_split_thresholds(32768, 64, 10)
        paper = (5155, 10309, 12886, 16384, 32768)
        assert len(values) == len(paper)
        for model_v, paper_v in zip(values, paper):
            assert model_v == pytest.approx(paper_v, rel=0.12)

    def test_strictly_increasing_on_many_configs(self):
        for t in (2048, 8192, 32768):
            for m, l in ((16, 9), (64, 11), (256, 13)):
                values = derive_split_thresholds(t, m, l)
                assert all(b > a for a, b in zip(values, values[1:]))

    def test_two_level_span(self):
        values = derive_split_thresholds(1024, 64, 8)
        # levels 5..7 -> 3 values
        assert len(values) == 3
        assert values[-1] == 1024
