"""Tests for the FR-FCFS-flavoured memory controller model."""

import pytest

from repro.core.sca import SCAScheme
from repro.dram.config import SystemConfig
from repro.dram.controller import MemoryController, MemRequest


def small_config():
    return SystemConfig(rows_per_bank=1024)


class TestQueueing:
    def test_requests_serviced_in_order(self):
        ctrl = MemoryController(small_config())
        for i in range(5):
            ctrl.enqueue(MemRequest(i * 10.0, bank=0, row=i, request_id=i))
        done = ctrl.drain_bank(0)
        ids = [c.request.request_id for c in done]
        assert ids == [0, 1, 2, 3, 4]

    def test_completion_times_monotone_per_bank(self):
        ctrl = MemoryController(small_config())
        for i in range(10):
            ctrl.enqueue(MemRequest(i * 5.0, bank=0, row=i % 3))
        done = ctrl.drain_bank(0)
        times = [c.done_ns for c in done]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_rejects_bad_bank(self):
        ctrl = MemoryController(small_config())
        with pytest.raises(ValueError):
            ctrl.enqueue(MemRequest(0.0, bank=999, row=0))

    def test_pending_counts(self):
        ctrl = MemoryController(small_config())
        ctrl.enqueue(MemRequest(0.0, bank=0, row=0))
        ctrl.enqueue(MemRequest(0.0, bank=1, row=0))
        assert ctrl.pending == 2
        ctrl.drain()
        assert ctrl.pending == 0


class TestCoalescing:
    def test_same_row_burst_coalesces(self):
        """Consecutive same-row requests piggyback on one activation."""
        ctrl = MemoryController(small_config())
        ctrl.enqueue(MemRequest(0.0, bank=0, row=7))
        ctrl.enqueue(MemRequest(1.0, bank=0, row=7))
        done = ctrl.drain_bank(0)
        t_cas = ctrl.config.timings.t_cas
        assert done[1].done_ns - done[0].done_ns == pytest.approx(t_cas)

    def test_different_rows_full_cycle(self):
        ctrl = MemoryController(small_config())
        ctrl.enqueue(MemRequest(0.0, bank=0, row=7))
        ctrl.enqueue(MemRequest(1.0, bank=0, row=8))
        done = ctrl.drain_bank(0)
        t_rc = ctrl.config.timings.t_rc
        assert done[1].done_ns - done[0].done_ns == pytest.approx(t_rc)

    def test_coalesced_access_counts_one_activation_for_scheme(self):
        config = small_config()
        schemes = [SCAScheme(1024, 100, 8) for _ in range(config.n_banks)]
        ctrl = MemoryController(config, schemes)
        for i in range(10):
            ctrl.enqueue(MemRequest(float(i), bank=0, row=7))
        ctrl.drain_bank(0)
        # burst of 10 same-row requests = 1 wordline activation
        assert schemes[0].counter_value(0) == 1


class TestSchemeIntegration:
    def test_threshold_refresh_blocks_bank(self):
        config = small_config()
        schemes = [SCAScheme(1024, 2, 8) for _ in range(config.n_banks)]
        ctrl = MemoryController(config, schemes)
        # alternate rows to defeat coalescing; threshold 2 fires quickly
        for i in range(6):
            ctrl.enqueue(MemRequest(i * 1000.0, bank=0, row=(i % 2) * 200))
        done = ctrl.drain_bank(0)
        assert schemes[0].stats.refresh_commands >= 1
        assert len(done) == 6

    def test_write_queue_capacity_triggers_drain(self):
        config = small_config()
        ctrl = MemoryController(config)
        for i in range(config.write_queue_capacity + 5):
            ctrl.enqueue(
                MemRequest(float(i), bank=0, row=i % 4, is_write=True)
            )
        # the overflow drain serviced the backlog
        assert ctrl.pending <= config.write_queue_capacity
        assert len(ctrl.completed) >= 5


class TestLatency:
    def test_latency_property(self):
        ctrl = MemoryController(small_config())
        ctrl.enqueue(MemRequest(100.0, bank=2, row=1))
        (done,) = ctrl.drain_bank(2)
        assert done.latency_ns == pytest.approx(ctrl.config.timings.t_rc)
