"""Crash-safe service layer: recovery, drain, supervision, backpressure.

These tests exercise the restart-transparency contract without a real
kill where possible: they write the journal a dead server would have
left (byte-for-byte, via the Journal API), start a fresh server on the
same cache dir, and assert the recovered results are identical to
direct execution — with the cell/snapshot accounting proving how much
was recomputed.  The CI kill-and-restart smoke job covers the genuine
SIGKILL path end to end.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Session
from repro.experiments import (
    ExperimentSpec,
    Plan,
    SchemeSpec,
    run_plan,
    run_spec,
)
from repro.experiments.cache import ResultCache
from repro.server import ReproServer, ServerConfig
from repro.server.app import SNAPSHOT_TAG
from repro.server.http import Request
from repro.server.journal import Journal
from repro.testing.faults import reset_faults

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_ROUND", raising=False)
    reset_faults()
    yield
    reset_faults()


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def make_server(tmp_path, **overrides):
    fields = dict(port=0, workers=1, driver_threads=2,
                  cache_dir=str(tmp_path / "cache"))
    fields.update(overrides)
    return ReproServer(ServerConfig(**fields))


def request(method, path, doc=None, query=None):
    body = b"" if doc is None else json.dumps(doc).encode()
    return Request(method=method, path=path, query=query or {},
                   headers={}, body=body)


def body_of(response):
    return json.loads(response.body)


def wait_job(server, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = server.jobs.get(job_id)
        if job is not None and job.finished:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def dead_server_journal(cache_root, job_id, kind, content_hash, n_cells,
                        doc, *states):
    """The journal a server killed mid-``states`` would have left."""
    journal = Journal(Path(cache_root) / "journal")
    journal.record_submit(job_id, kind, content_hash, n_cells, doc)
    for state in states:
        if isinstance(state, tuple):
            journal.record_state(job_id, state[0], error=state[1])
        else:
            journal.record_state(job_id, state)
    journal.close()
    return journal


class TestAdmissionControl:
    def test_drain_rejects_submissions_with_retry_after(self, tmp_path):
        server = make_server(tmp_path)
        try:
            server.begin_drain()
            spec = fast_spec(seed=41)
            resp = server.handle(
                request("POST", "/v1/runs", {"spec": spec.to_dict()})
            )
            assert resp.status == 503
            assert body_of(resp)["error"]["code"] == "draining"
            assert "Retry-After" in resp.headers
            # Reads stay live during the drain.
            health = server.handle(request("GET", "/v1/health"))
            assert health.status == 200
            assert body_of(health)["draining"] is True
            assert body_of(health)["status"] == "draining"
        finally:
            server.close()

    def test_full_queue_returns_429(self, tmp_path):
        server = make_server(tmp_path, max_queued=0)
        try:
            spec = fast_spec(seed=42)
            resp = server.handle(
                request("POST", "/v1/runs", {"spec": spec.to_dict()})
            )
            assert resp.status == 429
            assert body_of(resp)["error"]["code"] == "queue-full"
            assert "Retry-After" in resp.headers
        finally:
            server.close()

    def test_drain_reports_clean_when_idle(self, tmp_path):
        server = make_server(tmp_path)
        assert server.drain(deadline_s=5.0) is True


class TestPlanRecovery:
    def test_killed_plan_recomputes_only_missing_cells(self, tmp_path):
        base = fast_spec()
        plan = Plan.grid(base, seed=[51, 52, 53])
        cache_root = tmp_path / "cache"
        # Two of three cells had flushed before the "kill".
        warm = ResultCache(cache_root)
        for spec in plan.specs[:2]:
            warm.put(spec, run_spec(spec))
        dead_server_journal(
            cache_root, f"j00007-{plan.content_hash()[:8]}", "plan",
            plan.content_hash(), len(plan), {"plan": plan.to_dict()},
            "running",
        )
        server = make_server(tmp_path)
        try:
            assert server.recovery["replayed"] == 1
            assert server.recovery["requeued"] == 1
            job = wait_job(server, f"j00007-{plan.content_hash()[:8]}")
            assert job.status == "done"
            assert job.recovered is True
            # The report proves only the missing cell was simulated.
            assert job.report["counts"] == {"cached": 2, "ok": 1}
            # And the recovered artifact is byte-identical to a direct,
            # uninterrupted run_plan.
            served = json.dumps([r.to_dict() for r in job.results],
                                sort_keys=True, indent=1)
            direct = json.dumps([r.to_dict() for r in run_plan(plan)],
                                sort_keys=True, indent=1)
            assert served == direct
        finally:
            server.close()

    def test_done_job_reloads_results_without_simulation(self, tmp_path):
        spec = fast_spec(seed=54)
        cache_root = tmp_path / "cache"
        ResultCache(cache_root).put(spec, run_spec(spec))
        dead_server_journal(
            cache_root, f"j00003-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running", "done",
        )
        server = make_server(tmp_path)
        try:
            job = server.jobs.get(f"j00003-{spec.content_hash()[:8]}")
            assert job is not None and job.status == "done"
            assert job.recovered and job.cached
            assert server.recovery["restored_done"] == 1
            assert server.cache.hits >= 1  # reloaded, not re-simulated
            assert job.result.to_dict() == run_spec(spec).to_dict()
        finally:
            server.close()

    def test_done_job_with_cleared_cache_reexecutes(self, tmp_path):
        spec = fast_spec(seed=55)
        cache_root = tmp_path / "cache"
        dead_server_journal(
            cache_root, f"j00004-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running", "done",
        )
        server = make_server(tmp_path)  # cache holds nothing
        try:
            job = wait_job(server, f"j00004-{spec.content_hash()[:8]}")
            assert job.status == "done" and job.recovered
            assert server.recovery["requeued"] == 1
            assert job.result.to_dict() == run_spec(spec).to_dict()
        finally:
            server.close()

    def test_failed_job_is_restored_as_failed(self, tmp_path):
        spec = fast_spec(seed=56)
        cache_root = tmp_path / "cache"
        dead_server_journal(
            cache_root, f"j00005-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running", ("failed", "ValueError: boom"),
        )
        server = make_server(tmp_path)
        try:
            job = server.jobs.get(f"j00005-{spec.content_hash()[:8]}")
            assert job.status == "failed" and job.recovered
            assert job.error == "ValueError: boom"
            assert server.recovery["restored_failed"] == 1
        finally:
            server.close()

    def test_unreadable_document_fails_the_job(self, tmp_path):
        cache_root = tmp_path / "cache"
        dead_server_journal(
            cache_root, "j00006-deadbeef", "run", "deadbeef" * 8, 1,
            {"spec": {"nonsense": True}}, "queued",
        )
        server = make_server(tmp_path)
        try:
            job = server.jobs.get("j00006-deadbeef")
            assert job.status == "failed" and job.recovered
            assert job.error.startswith("recovery:")
        finally:
            server.close()

    def test_recovery_compacts_the_journal(self, tmp_path):
        cache_root = tmp_path / "cache"
        journal = Journal(Path(cache_root) / "journal",
                          max_segment_bytes=64)
        for i in range(4):  # four tiny segments of dead history
            journal.record_submit(f"j{i + 1:05d}-deadbeef", "run",
                                  "deadbeef" * 8, 1, {"spec": {}})
            journal.record_state(f"j{i + 1:05d}-deadbeef", "failed",
                                 error="old")
        journal.close()
        server = make_server(tmp_path)
        try:
            assert len(server.journal.segments()) == 1
            # Replaying the compacted journal reproduces the table.
            replayed = Journal(Path(cache_root) / "journal").replay()
            assert len(replayed) == 4
            assert all(j.status == "failed" for j in replayed.values())
        finally:
            server.close()


class TestRunSnapshotResume:
    def test_run_killed_mid_flight_resumes_from_snapshot(self, tmp_path):
        spec = fast_spec(seed=61, n_intervals=4)
        cache_root = tmp_path / "cache"
        # The dead server had checkpointed two epochs in.
        session = Session(spec)
        session.advance(2 * session.epoch_ns)
        ResultCache(cache_root).put_snapshot(spec, SNAPSHOT_TAG,
                                             session.snapshot())
        dead_server_journal(
            cache_root, f"j00002-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running",
        )
        server = make_server(tmp_path)
        try:
            job = wait_job(server, f"j00002-{spec.content_hash()[:8]}")
            assert job.status == "done" and job.recovered
            assert server.recovery["resumed_from_snapshot"] == 1
            # Byte-identical to an uninterrupted run (the PR-4 proof).
            assert job.result.to_dict() == run_spec(spec).to_dict()
            # The finished run deleted its resume point.
            assert not server.cache.snapshot_path(
                spec, SNAPSHOT_TAG).exists()
        finally:
            server.close()

    def test_corrupt_snapshot_degrades_to_cold_start(self, tmp_path):
        spec = fast_spec(seed=62, n_intervals=2)
        cache_root = tmp_path / "cache"
        cache = ResultCache(cache_root)
        path = cache.snapshot_path(spec, SNAPSHOT_TAG)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn", encoding="utf-8")
        dead_server_journal(
            cache_root, f"j00002-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running",
        )
        server = make_server(tmp_path)
        try:
            job = wait_job(server, f"j00002-{spec.content_hash()[:8]}")
            assert job.status == "done"
            assert server.recovery["resumed_from_snapshot"] == 0
            assert job.result.to_dict() == run_spec(spec).to_dict()
        finally:
            server.close()


class TestDriverFaults:
    def test_retryable_driver_failure_requeues_and_converges(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "server.driver:raise")
        reset_faults()
        server = make_server(tmp_path)
        try:
            spec = fast_spec(seed=63)
            resp = server.handle(
                request("POST", "/v1/runs", {"spec": spec.to_dict()})
            )
            assert resp.status == 202
            job = wait_job(server, body_of(resp)["job"])
            assert job.status == "done"
            assert job.requeues == 1  # died once, requeued, converged
            assert job.result.to_dict() == run_spec(spec).to_dict()
        finally:
            server.close()


class TestSupervision:
    class _Result:
        def to_dict(self):
            return {"fake": True}

    def test_stalled_job_is_requeued(self, tmp_path):
        clock = [0.0]
        server = ReproServer(
            ServerConfig(port=0, cache_dir=str(tmp_path / "cache"),
                         stall_timeout_s=10.0),
            clock=lambda: clock[0],
        )
        try:
            job, owner = server.jobs.submit("run", "ab" * 32, 1)
            assert owner
            finish = self._Result()

            def work(job_id, payload, generation):
                server.jobs.mark_done(job_id, generation, result=finish)

            with server._work_lock:
                server._work[job.id] = (work, None)
            server.jobs.mark_running(job.id)
            clock[0] = 5.0
            assert server.supervise_once() == []  # heartbeat still fresh
            clock[0] = 20.0
            assert server.supervise_once() == [job.id]
            final = wait_job(server, job.id)
            assert final.status == "done" and final.requeues == 1
            assert server.recovery["supervisor_requeues"] == 1
        finally:
            server.close()

    def test_stalled_job_out_of_budget_fails(self, tmp_path):
        clock = [0.0]
        server = ReproServer(
            ServerConfig(port=0, cache_dir=str(tmp_path / "cache"),
                         stall_timeout_s=10.0, max_job_requeues=0),
            clock=lambda: clock[0],
        )
        try:
            job, _owner = server.jobs.submit("run", "cd" * 32, 1)
            server.jobs.mark_running(job.id)
            clock[0] = 20.0
            assert server.supervise_once() == []
            assert server.jobs.get(job.id).status == "failed"
            assert "stalled" in server.jobs.get(job.id).error
        finally:
            server.close()

    def test_stale_generation_cannot_finish_the_job(self, tmp_path):
        server = make_server(tmp_path)
        try:
            job, _owner = server.jobs.submit("run", "ef" * 32, 1)
            server.jobs.mark_running(job.id, 0)
            new_generation = server.jobs.requeue(job.id)
            assert new_generation == 1
            # The zombie thread (generation 0) cannot stamp anything.
            assert server.jobs.mark_done(job.id, 0,
                                         result=object()) is None
            assert server.jobs.touch(job.id, 0) is False
            assert server.jobs.get(job.id).status == "queued"
            # The live generation can.
            assert server.jobs.mark_running(job.id, new_generation)
        finally:
            server.close()


class TestCooperativeStop:
    def test_stop_requires_keep_going(self):
        with pytest.raises(ValueError, match="keep_going"):
            run_plan([fast_spec(seed=71)], stop=lambda: True)

    def test_immediate_stop_leaves_everything_pending(self):
        plan = Plan.grid(fast_spec(), seed=[72, 73])
        report = run_plan(plan, keep_going=True, stop=lambda: True)
        assert report.ok is False
        assert len(report.pending) == 2
        assert all(c.status == "pending" for c in report.cells)

    def test_stop_after_first_cell_flush(self, tmp_path, monkeypatch):
        # Serial path checks stop between cells; the fused fast path
        # would batch the whole group past the check, so disable it.
        monkeypatch.setattr("repro.experiments.run.fused_sweep_enabled",
                            lambda: False)
        plan = Plan.grid(fast_spec(), seed=[74, 75, 76])
        cache_dir = tmp_path / "cells"

        def first_cell_landed():
            return any(cache_dir.rglob("*.json"))

        report = run_plan(plan, cache=str(cache_dir), keep_going=True,
                          stop=first_cell_landed)
        counts = report.counts()
        assert counts.get("ok") == 1
        assert counts.get("pending") == 2
        # The flushed cell is reusable: a resumed run recomputes only
        # the pending ones and matches direct execution.
        resumed = run_plan(plan, cache=str(cache_dir))
        direct = run_plan(plan)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in direct]


class TestJobListing:
    def test_state_filter_and_recovered_flag(self, tmp_path):
        spec = fast_spec(seed=77)
        cache_root = tmp_path / "cache"
        dead_server_journal(
            cache_root, f"j00009-{spec.content_hash()[:8]}", "run",
            spec.content_hash(), 1, {"spec": spec.to_dict()},
            "running", ("failed", "dead"),
        )
        server = make_server(tmp_path)
        try:
            resp = server.handle(request("GET", "/v1/jobs",
                                         query={"state": "failed"}))
            docs = body_of(resp)["jobs"]
            assert [d["recovered"] for d in docs] == [True]
            assert docs[0]["status"] == "failed"
            empty = server.handle(request("GET", "/v1/jobs",
                                          query={"state": "done"}))
            assert body_of(empty)["jobs"] == []
            bad = server.handle(request("GET", "/v1/jobs",
                                        query={"state": "bogus"}))
            assert bad.status == 422
        finally:
            server.close()

    def test_health_surfaces_journal_and_recovery(self, tmp_path):
        server = make_server(tmp_path)
        try:
            doc = body_of(server.handle(request("GET", "/v1/health")))
            assert doc["journal"]["segments"] == 0
            assert set(doc["recovery"]) >= {
                "replayed", "requeued", "restored_done",
                "resumed_from_snapshot",
            }
            assert set(doc["locks"]) == {
                "acquires", "contended", "timeouts", "stale_broken",
            }
            assert doc["draining"] is False
        finally:
            server.close()


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """An idle server drains within the deadline on SIGTERM."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", str(tmp_path / "cache"),
             "--drain-deadline", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, cwd=str(Path(__file__).resolve().parents[1]),
            env={**__import__("os").environ,
                 "PYTHONPATH": str(Path(__file__).resolve().parents[1]
                                   / "src")},
        )
        try:
            deadline = time.monotonic() + 60
            announced = False
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "serving on" in line:
                    announced = True
                    break
            assert announced, "server never announced"
            proc.send_signal(signal.SIGTERM)
            returncode = proc.wait(timeout=60)
            assert returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
