"""Figure-rendering layer: registry coverage, determinism, CLI, HTML.

The coverage tests walk the checked-in golden stores directly — every
golden artifact kind must resolve to a registered renderer and render
without error from both the ci and smoke stores — so a new bench whose
renderer is missing fails here before it fails in the docs CI job.
"""

import hashlib
import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.figures import (
    render_artifact,
    render_directory,
    renderer_for,
    resolve,
)
from repro.figures.html import build_index
from repro.figures.perf import perf_speedup_rows, render_perf_report
from repro.figures.svg import Series, grouped_bar_chart, line_chart, log_ticks
from repro.report.schema import build_artifact, dump_artifact, load_artifact

REPO = Path(__file__).resolve().parents[1]
GOLDEN = REPO / "benchmarks" / "golden"
CI_PATHS = sorted((GOLDEN / "ci").glob("*.json"))
SMOKE_PATHS = sorted((GOLDEN / "smoke").glob("*.json"))


def _ids(paths):
    return [p.stem for p in paths]


class TestRendererCoverage:
    def test_golden_stores_are_populated(self):
        assert len(CI_PATHS) >= 20
        assert len(SMOKE_PATHS) >= 20

    @pytest.mark.parametrize("path", CI_PATHS, ids=_ids(CI_PATHS))
    def test_every_ci_golden_has_a_renderer(self, path):
        assert resolve(path.stem) is not None, (
            f"no renderer registered for artifact kind {path.stem!r}; "
            "add one in src/repro/figures/paper.py (see DESIGN.md, "
            "'Adding a new figure')"
        )

    @pytest.mark.parametrize("path", CI_PATHS + SMOKE_PATHS,
                             ids=_ids(CI_PATHS) + [f"smoke-{s}" for s in
                                                   _ids(SMOKE_PATHS)])
    def test_renders_without_error(self, path):
        artifact = load_artifact(path)
        figure = render_artifact(artifact, source=path)
        assert figure is not None
        assert figure.svg.startswith("<svg ")
        assert figure.svg.rstrip().endswith("</svg>")

    def test_unknown_kind_resolves_to_none(self):
        assert renderer_for("no_such_artifact_kind") is None


class TestDeterminism:
    def test_same_input_same_bytes(self, tmp_path):
        out_a, out_b = tmp_path / "a", tmp_path / "b"
        for out in (out_a, out_b):
            report = render_directory(GOLDEN / "ci", out, html=True,
                                      golden_dir=GOLDEN / "ci")
            assert report.ok
        hashes = {}
        for out in (out_a, out_b):
            for p in sorted(out.iterdir()):
                digest = hashlib.sha256(p.read_bytes()).hexdigest()
                hashes.setdefault(p.name, set()).add(digest)
        assert hashes, "nothing rendered"
        unstable = [n for n, d in hashes.items() if len(d) != 1]
        assert not unstable, f"nondeterministic outputs: {unstable}"

    def test_log_ticks_stride_wide_ranges(self):
        ticks = log_ticks(1e-76, 1.0)
        assert len(ticks) <= 12
        assert all(t > 0 for t in ticks)
        assert ticks == sorted(ticks)


class TestDirectoryRender:
    def test_renders_all_ci_goldens(self, tmp_path):
        report = render_directory(GOLDEN / "ci", tmp_path, html=True,
                                  golden_dir=GOLDEN / "ci")
        assert report.ok
        assert len(report.rendered) == len(CI_PATHS)
        assert all(f.golden_status == "match" for f in report.rendered)
        for path in CI_PATHS:
            assert (tmp_path / f"{path.stem}.svg").is_file()

    def test_html_index_lists_every_input(self, tmp_path):
        report = render_directory(GOLDEN / "ci", tmp_path, html=True)
        html = report.index_path.read_text(encoding="utf-8")
        for path in CI_PATHS:
            assert f'data-artifact="{path.stem}"' in html
            assert f'id="{path.stem}"' in html

    def test_unknown_kind_skips_with_warning(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        shutil.copy(CI_PATHS[0], src / CI_PATHS[0].name)
        artifact = build_artifact(
            "mystery_future_figure", "A figure from the future",
            [{"x": 1}], ["x"], engine="batched", scale=24.0,
        )
        dump_artifact(artifact, src / "mystery_future_figure.json")
        report = render_directory(src, tmp_path / "out", html=True)
        assert report.ok  # unknown kind is a warning, not an error
        assert len(report.rendered) == 1
        assert any(name == "mystery_future_figure" and "no renderer" in why
                   for name, why in report.skipped)

    def test_stray_json_skips(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "notes.json").write_text('{"hello": "world"}',
                                        encoding="utf-8")
        report = render_directory(src, tmp_path / "out")
        assert report.ok
        assert not report.rendered
        assert any(name == "notes.json" for name, _ in report.skipped)

    def test_golden_overlay_flags_a_difference(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        doc = json.loads(CI_PATHS[0].read_text(encoding="utf-8"))
        artifact = load_artifact(CI_PATHS[0])
        first_numeric = next(
            (i, c) for i, row in enumerate(doc["rows"])
            for c in doc["columns"]
            if isinstance(row.get(c), (int, float))
            and not isinstance(row.get(c), bool)
        )
        i, column = first_numeric
        doc["rows"][i][column] = 1e9
        (src / CI_PATHS[0].name).write_text(json.dumps(doc),
                                            encoding="utf-8")
        report = render_directory(src, tmp_path / "out", html=True,
                                  golden_dir=GOLDEN / "ci")
        assert report.ok
        [figure] = report.rendered
        assert figure.golden_status == "diff"
        assert not figure.diff.ok
        assert artifact.name in report.index_path.read_text(
            encoding="utf-8")


class TestFiguresCli:
    def test_cli_renders_golden_store(self, tmp_path, capsys):
        code = main([
            "figures", "--html", "--from", str(GOLDEN / "ci"),
            "--out", str(tmp_path), "--golden-overlay",
            "--golden-dir", str(GOLDEN / "ci"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "index.html").is_file()
        assert f"rendered {len(CI_PATHS)} figure(s)" in out

    def test_cli_only_subset(self, tmp_path):
        code = main([
            "figures", "--from", str(GOLDEN / "ci"),
            "--out", str(tmp_path), "--only", "fig8_cmrpo_t32k",
        ])
        assert code == 0
        assert (tmp_path / "fig8_cmrpo_t32k.svg").is_file()
        assert not (tmp_path / "fig9_eto_t32k.svg").is_file()

    def test_cli_missing_dir_is_usage_error(self, tmp_path, capsys):
        code = main(["figures", "--from", str(tmp_path / "nope"),
                     "--out", str(tmp_path / "out")])
        assert code == 2
        assert "no such artifact directory" in capsys.readouterr().out

    def test_cli_empty_dir_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = main(["figures", "--from", str(empty),
                     "--out", str(tmp_path / "out")])
        assert code == 2
        assert "no figure artifacts" in capsys.readouterr().out

    def test_cli_renderer_crash_exits_nonzero(self, tmp_path, capsys,
                                              monkeypatch):
        import repro.figures.registry as registry

        def boom(artifact, ctx):
            raise RuntimeError("renderer exploded")

        # paper.py is already imported, so _ensure_loaded() will not
        # re-register over the patched list.
        monkeypatch.setattr(
            registry, "_RENDERERS", [("fig8_cmrpo_t*", boom)])
        code = main([
            "figures", "--from", str(GOLDEN / "ci"),
            "--out", str(tmp_path), "--only", "fig8_cmrpo_t32k",
        ])
        assert code == 1
        assert "renderer exploded" in capsys.readouterr().out


class TestPerfFigure:
    def test_repo_perf_report_renders(self):
        perf_json = REPO / "BENCH_perf.json"
        doc = json.loads(perf_json.read_text(encoding="utf-8"))
        rows = perf_speedup_rows(doc)
        assert rows, "BENCH_perf.json carries no speedups"
        figure = render_perf_report(perf_json)
        assert figure.name == "bench_perf"
        assert "<svg " in figure.svg

    def test_wrong_kind_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            render_perf_report(bad)


class TestHtmlIndex:
    def test_index_escapes_and_badges(self):
        artifact = load_artifact(CI_PATHS[0])
        figure = render_artifact(artifact)
        html = build_index([figure], skipped=[("x.json", "why <tag>")],
                           source="results & co")
        assert "results &amp; co" in html
        assert "why &lt;tag&gt;" in html
        assert 'class="badge off"' in html


class TestSvgBackend:
    def test_series_coercion(self):
        s = Series.make("s", [1, 2.5, "3.5e0", "n/a", None, True])
        assert s.values == (1.0, 2.5, 3.5, None, None, None)

    def test_charts_handle_empty_series(self):
        svg = grouped_bar_chart("t", ["a"], [Series.make("s", [None])])
        assert svg.startswith("<svg ")
        svg = line_chart("t", [1.0], [Series.make("s", [None])])
        assert svg.startswith("<svg ")
