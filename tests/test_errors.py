"""Tests for the failure taxonomy (repro.errors)."""

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import (
    CellExecutionError,
    CellFailure,
    CellStatus,
    CellTimeout,
    FatalError,
    InjectedFault,
    ReproError,
    RetryableError,
    is_retryable,
)
from repro.experiments import ExperimentSpec, SchemeSpec

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(RetryableError, ReproError)
        assert issubclass(FatalError, ReproError)
        assert issubclass(InjectedFault, RetryableError)
        assert issubclass(CellTimeout, RetryableError)
        assert issubclass(CellExecutionError, FatalError)

    def test_injected_fault_not_swallowable(self):
        # The store robustness paths catch (ValueError, KeyError,
        # TypeError, OSError) to treat corruption as a miss; an injected
        # *raise* fault must never be silently absorbed by them.
        assert not issubclass(
            InjectedFault, (ValueError, KeyError, TypeError, OSError)
        )

    def test_explicit_classification_wins(self):
        assert is_retryable(RetryableError("x"))
        assert not is_retryable(FatalError("x"))
        assert is_retryable(InjectedFault("x"))
        assert is_retryable(CellTimeout("x"))
        assert not is_retryable(CellExecutionError([]))

    @pytest.mark.parametrize("exc", [
        OSError("disk"),
        TimeoutError("slow"),
        MemoryError(),
        BrokenProcessPool("worker died"),
        ConnectionError("gone"),
    ])
    def test_operational_types_are_transient(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize("exc", [
        ValueError("bad"),
        TypeError("bad"),
        KeyError("bad"),
        ZeroDivisionError(),
        AssertionError(),
    ])
    def test_code_bugs_are_fatal(self, exc):
        assert not is_retryable(exc)


class TestCellFailure:
    def test_from_exception_captures_traceback(self):
        spec = fast_spec()
        try:
            raise OSError("store went away")
        except OSError as exc:
            failure = CellFailure.from_exception(spec, 2, exc)
        assert failure.spec_hash == spec.content_hash()
        assert failure.label == "libq/drcat"
        assert failure.attempt == 2
        assert failure.error_type == "OSError"
        assert failure.message == "store went away"
        assert failure.retryable
        assert "store went away" in failure.traceback
        assert "test_errors.py" in failure.traceback

    def test_fatal_classification_recorded(self):
        failure = CellFailure.from_exception(
            fast_spec(), 1, ValueError("bug")
        )
        assert not failure.retryable

    def test_dict_round_trip(self):
        original = CellFailure.from_exception(
            fast_spec(), 3, InjectedFault("boom")
        )
        doc = original.to_dict()
        assert CellFailure.from_dict(doc) == original
        # The wire form must survive pickling (chunk outcomes cross the
        # process boundary as dicts inside future results).
        assert pickle.loads(pickle.dumps(doc)) == doc


class TestCellExecutionError:
    def _failure(self, exc):
        return CellFailure.from_exception(fast_spec(), 1, exc)

    def test_message_names_first_cell(self):
        err = CellExecutionError([self._failure(OSError("io"))])
        assert "libq/drcat" in str(err)
        assert "OSError" in str(err)
        assert "more failed" not in str(err)

    def test_message_counts_extra_failures(self):
        err = CellExecutionError([
            self._failure(OSError("a")), self._failure(OSError("b")),
        ])
        assert "+1 more failed cell(s)" in str(err)

    def test_carries_report(self):
        sentinel = object()
        err = CellExecutionError([self._failure(OSError())], sentinel)
        assert err.report is sentinel

    def test_empty_failures_tolerated(self):
        assert "unknown cell" in str(CellExecutionError([]))


class TestCellStatus:
    def test_to_dict_nests_failures(self):
        status = CellStatus(
            index=4, spec_hash="abc", label="libq/drcat", status="failed",
            attempts=3,
            failures=[CellFailure.from_exception(
                fast_spec(), 1, OSError("x"))],
        )
        doc = status.to_dict()
        assert doc["index"] == 4
        assert doc["status"] == "failed"
        assert doc["failures"][0]["error_type"] == "OSError"
