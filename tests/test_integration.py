"""End-to-end integration tests: paper-shape assertions on small runs.

These runs use aggressive scaling (fast), so they assert *orderings*
and coarse magnitudes — the properties the benchmark harness then
reproduces at higher fidelity.
"""

from repro import simulate_workload
from repro.experiments import SchemeSpec
from repro.sim.runner import simulate_attack, sweep, suite_means

FAST = dict(scale=32.0, n_banks=1, n_intervals=2)


class TestSchemeOrderings:
    def test_cat_beats_sca_on_skewed_workload(self):
        """The paper's core claim: adaptive counters refresh far fewer
        rows than a uniform static assignment at equal counter count."""
        sca = simulate_workload("black", scheme=SchemeSpec.create("sca", n_counters=64), **FAST)
        drcat = simulate_workload("black", scheme=SchemeSpec.create("drcat", n_counters=64), **FAST)
        assert (
            drcat.totals.rows_refreshed_per_bank_interval
            < 0.7 * sca.totals.rows_refreshed_per_bank_interval
        )
        assert drcat.cmrpo < sca.cmrpo

    def test_sca128_beats_sca64_rows(self):
        r64 = simulate_workload("face", scheme=SchemeSpec.create("sca", n_counters=64), **FAST)
        r128 = simulate_workload("face", scheme=SchemeSpec.create("sca", n_counters=128), **FAST)
        assert (
            r128.totals.rows_refreshed_per_bank_interval
            < r64.totals.rows_refreshed_per_bank_interval
        )

    def test_pra_dominated_by_prng_energy(self):
        result = simulate_workload("libq", scheme="pra", **FAST)
        b = result.cmrpo_breakdown
        assert b.dynamic_mw > b.refresh_mw

    def test_pra_cmrpo_near_paper_level(self):
        """PRA's CMRPO is access-rate bound: ~10% at paper intensities."""
        result = simulate_workload("comm1", scheme="pra", **FAST)
        assert 0.05 < result.cmrpo < 0.20

    def test_cat_eto_below_sca(self):
        sca = simulate_workload("black", scheme=SchemeSpec.create("sca", n_counters=64), **FAST)
        prcat = simulate_workload("black", scheme=SchemeSpec.create("prcat", n_counters=64), **FAST)
        assert prcat.eto < sca.eto

    def test_all_etos_small(self):
        """Figure 9: every scheme's ETO stays in the sub-percent range."""
        for scheme in ("pra", "sca", "prcat", "drcat"):
            r = simulate_workload("comm1", scheme=scheme, **FAST)
            assert r.eto < 0.05


class TestThresholdSensitivity:
    def test_sca_suffers_more_at_lower_threshold(self):
        """Figure 8/12: halving T inflates SCA's CMRPO far more than
        CAT's."""
        def run(scheme, t):
            return simulate_workload(
                "face", scheme=scheme, refresh_threshold=t, **FAST
            ).cmrpo

        sca_growth = run("sca", 16384) - run("sca", 32768)
        drcat_growth = run("drcat", 16384) - run("drcat", 32768)
        assert sca_growth > drcat_growth

    def test_drcat_stays_under_ten_percent_at_8k(self):
        """Figure 12: T=8K with doubled counters stays below 10%."""
        r = simulate_workload(
            "comm1",
            scheme=SchemeSpec.create("drcat", n_counters=128),
            refresh_threshold=8192,
            **FAST,
        )
        assert r.cmrpo < 0.10


class TestAttackIntegration:
    def test_heavier_attacks_cost_more_eto(self):
        etos = [
            simulate_attack(
                "kernel01", mode,
                SchemeSpec.create("sca", n_counters=128),
                refresh_threshold=16384, **FAST
            ).eto
            for mode in ("light", "heavy")
        ]
        assert etos[1] > etos[0]

    def test_cat_confines_attacks_better_than_sca(self):
        """Section VIII-D: CAT refreshes far fewer rows under attack."""
        sca = simulate_attack(
            "kernel02", "heavy",
            SchemeSpec.create("sca", n_counters=128),
            refresh_threshold=16384, **FAST
        )
        drcat = simulate_attack(
            "kernel02", "heavy",
            SchemeSpec.create("drcat", n_counters=64),
            refresh_threshold=16384, **FAST
        )
        assert (
            drcat.totals.rows_refreshed_per_bank_interval
            < 0.5 * sca.totals.rows_refreshed_per_bank_interval
        )


class TestSweepIntegration:
    def test_mean_ordering_over_sample(self):
        """Figure 8 headline: CAT mean CMRPO beats SCA and PRA means."""
        results = sweep(
            workloads=["black", "face", "comm1", "libq"],
            schemes=("pra", "sca", "drcat"),
            **FAST,
        )
        means = suite_means(results, "cmrpo")
        assert means["drcat"] < means["sca"]
        assert means["drcat"] < means["pra"]

    def test_sweep_results_all_populated(self):
        results = sweep(workloads=["mum"], schemes=("sca", "prcat"), **FAST)
        for result in results.values():
            assert result.totals.accesses > 0
            assert result.cmrpo >= 0
