"""Tests for the PRNG models (true-random vs LFSR)."""

import pytest

from repro.analysis.prng import LFSR_TAPS, CountingPRNG, LFSRPRNG, TrueRandomPRNG


class TestTrueRandom:
    def test_range(self):
        prng = TrueRandomPRNG(seed=0)
        draws = [prng.next_bits(9) for _ in range(2000)]
        assert all(0 <= d < 512 for d in draws)

    def test_rough_uniformity(self):
        prng = TrueRandomPRNG(seed=0)
        draws = [prng.next_bits(4) for _ in range(16000)]
        counts = [draws.count(v) for v in range(16)]
        assert min(counts) > 700 and max(counts) < 1300

    def test_seeded_reproducibility(self):
        a = TrueRandomPRNG(seed=42)
        b = TrueRandomPRNG(seed=42)
        assert [a.next_bits(8) for _ in range(50)] == [
            b.next_bits(8) for _ in range(50)
        ]


class TestLFSR:
    def test_rejects_unknown_width(self):
        with pytest.raises(ValueError):
            LFSRPRNG(width=7)

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            LFSRPRNG(width=16, seed=0)

    def test_state_never_zero(self):
        lfsr = LFSRPRNG(width=8, seed=1)
        for _ in range(300):
            lfsr.step()
            assert lfsr._state != 0

    def test_maximal_period_width8(self):
        """The width-8 taps are primitive: period 2^8 - 1."""
        lfsr = LFSRPRNG(width=8, seed=1)
        start = lfsr._state
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr._state == start:
                break
            assert period <= 255, "period exceeds maximal length"
        assert period == 255

    def test_maximal_period_width9(self):
        lfsr = LFSRPRNG(width=9, seed=3)
        start = lfsr._state
        period = 0
        while True:
            lfsr.step()
            period += 1
            if lfsr._state == start:
                break
            assert period <= 511
        assert period == 511

    def test_sequence_repeats_with_period(self):
        lfsr = LFSRPRNG(width=8, seed=0x5A)
        seq1 = [lfsr.step() for _ in range(255)]
        seq2 = [lfsr.step() for _ in range(255)]
        assert seq1 == seq2

    def test_deterministic_draws(self):
        a = LFSRPRNG(width=16, seed=0xACE1)
        b = LFSRPRNG(width=16, seed=0xACE1)
        assert [a.next_bits(9) for _ in range(100)] == [
            b.next_bits(9) for _ in range(100)
        ]

    def test_period_bound(self):
        assert LFSRPRNG(width=16).period_bound == 65535

    def test_all_widths_have_valid_taps(self):
        for width in LFSR_TAPS:
            lfsr = LFSRPRNG(width=width, seed=1)
            bits = [lfsr.step() for _ in range(64)]
            assert set(bits) <= {0, 1}
            assert any(bits), "degenerate all-zero output"


class TestCountingPRNG:
    def test_wraps_to_bit_width(self):
        prng = CountingPRNG(510)
        draws = [prng.next_bits(9) for _ in range(4)]
        assert draws == [510, 511, 0, 1]
