"""Tests for the memory system (banks + per-bank mitigation engines)."""

import pytest

from repro.core.sca import SCAScheme
from repro.dram.config import SystemConfig
from repro.dram.memory_system import MemorySystem


def small_config():
    return SystemConfig(rows_per_bank=1024)


class TestWiring:
    def test_one_scheme_per_bank(self):
        config = small_config()
        system = MemorySystem(config, lambda n: SCAScheme(n, 100, 8))
        assert len(system.schemes) == config.n_banks
        ids = {id(s) for s in system.schemes}
        assert len(ids) == config.n_banks

    def test_unprotected_baseline(self):
        system = MemorySystem(small_config(), None)
        system.access(0.0, 0, 5)
        assert system.total_refresh_commands == 0

    def test_rejects_bad_epoch(self):
        with pytest.raises(ValueError):
            MemorySystem(small_config(), None, epoch_s=0)


class TestRefreshFlow:
    def test_scheme_refresh_reaches_bank(self):
        system = MemorySystem(small_config(), lambda n: SCAScheme(n, 10, 8))
        for i in range(10):
            system.access(float(i * 100), 0, 5)
        assert system.total_refresh_commands == 1
        assert system.total_rows_refreshed == 129  # clamped group + 1
        assert system.banks[0].refresh_backlog_rows > 0

    def test_refresh_isolated_to_bank(self):
        system = MemorySystem(small_config(), lambda n: SCAScheme(n, 10, 8))
        for i in range(10):
            system.access(float(i * 100), 3, 5)
        assert system.banks[3].rows_refreshed > 0
        assert system.banks[0].rows_refreshed == 0

    def test_activations_counted_per_bank(self):
        system = MemorySystem(small_config(), None)
        system.access(0.0, 0, 1)
        system.access(10.0, 1, 1)
        system.access(20.0, 1, 2)
        assert system.banks[0].activations == 1
        assert system.banks[1].activations == 2
        assert system.total_activations == 3


class TestEpochs:
    def test_epoch_boundary_invokes_scheme_hook(self):
        system = MemorySystem(
            small_config(), lambda n: SCAScheme(n, 100, 8), epoch_s=1e-6
        )
        system.access(0.0, 0, 5)
        system.access(5000.0, 0, 5)  # 5 us later: several epochs passed
        assert system.schemes[0].stats.resets >= 1

    def test_epoch_counts_reset_counters(self):
        system = MemorySystem(
            small_config(), lambda n: SCAScheme(n, 100, 8), epoch_s=1e-6
        )
        for i in range(50):
            system.access(float(i), 0, 5)
        assert system.schemes[0].counter_value(0) == 50
        system.access(2000.0, 0, 5)
        assert system.schemes[0].counter_value(0) == 1

    def test_multiple_epochs_advance(self):
        system = MemorySystem(
            small_config(), lambda n: SCAScheme(n, 100, 8), epoch_s=1e-6
        )
        system.access(0.0, 0, 5)
        system.access(10_000.0, 0, 5)  # 10 epochs later
        assert system.schemes[0].stats.resets == 10


class TestAggregates:
    def test_scheme_stats_merged(self):
        system = MemorySystem(small_config(), lambda n: SCAScheme(n, 10, 8))
        for bank in range(2):
            for i in range(10):
                system.access(float(i * 50), bank, 5)
        merged = system.scheme_stats()
        assert merged["activations"] == 20
        assert merged["refresh_commands"] == 2

    def test_stall_aggregation(self):
        system = MemorySystem(small_config(), lambda n: SCAScheme(n, 5, 8))
        t = 0.0
        for i in range(200):
            t += 200.0  # idle gaps so the refresh backlog can drain
            system.access(t, 0, 5)
        assert system.total_stall_ns >= 0.0
        assert system.total_mitigation_busy_ns > 0.0
