"""Documentation link checker: local references must resolve.

Walks the markdown links and images of the top-level docs plus every
file/module path they name in backticked code spans that look like
paths, and asserts the targets exist in the checkout.  External
(http/https/mailto) links are out of scope — CI has no network
guarantee — but every relative link is a promise about this repo's
layout and goes stale silently without this gate.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

DOCS = [
    REPO / "README.md",
    REPO / "DESIGN.md",
    REPO / "docs" / "REPORT.md",
]

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
# Backticked spans that look like repo paths (contain a slash and an
# extension), e.g. `src/repro/report/compare.py`.
_PATH_SPAN = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[a-z]{2,4})`")


def _targets(doc: Path):
    text = doc.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        if target.startswith("../"):
            continue  # points outside the checkout (e.g. the CI badge)
        yield target.split("#")[0]
    for match in _PATH_SPAN.finditer(text):
        yield match.group(1)


@pytest.mark.parametrize("doc", DOCS, ids=[d.name for d in DOCS])
def test_local_references_resolve(doc):
    assert doc.is_file(), f"{doc} is missing"
    broken = []
    for target in _targets(doc):
        # Docs name paths relative to themselves, to the repo root, or
        # in module shorthand relative to src/ or src/repro/.
        roots = (doc.parent, REPO, REPO / "src", REPO / "src" / "repro")
        if not any((root / target).exists() for root in roots):
            broken.append(target)
    assert not broken, (
        f"{doc.relative_to(REPO)} references missing local paths: "
        f"{sorted(set(broken))}"
    )


def test_report_gallery_images_exist():
    report = REPO / "docs" / "REPORT.md"
    images = [m.group(1) for m in
              re.finditer(r"!\[[^\]]*\]\(([^)\s]+)\)",
                          report.read_text(encoding="utf-8"))]
    assert len(images) >= 5, "REPORT.md should embed the headline gallery"
    missing = [i for i in images if not (report.parent / i).is_file()]
    assert not missing, f"gallery thumbnails missing: {missing}"
