"""Tests for the Figure 2 SCA energy-breakdown model."""

import pytest

from repro.analysis.sca_energy import (
    COUNTER_CACHE_SIZES,
    FIGURE2_M_SWEEP,
    counter_cache_energy_nj,
    counter_energy_nj,
    energy_crossover_m,
    figure2_sweep,
    optimal_m,
    refresh_energy_nj,
)


class TestSweepShape:
    def test_sweep_covers_16_to_65536(self):
        assert FIGURE2_M_SWEEP[0] == 16
        assert FIGURE2_M_SWEEP[-1] == 65536
        points = figure2_sweep()
        assert [p.n_counters for p in points] == list(FIGURE2_M_SWEEP)

    def test_counter_energy_increases_with_m(self):
        points = figure2_sweep()
        energies = [p.counter_energy_nj for p in points]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_refresh_energy_decreases_with_m(self):
        points = figure2_sweep()
        energies = [p.refresh_energy_nj for p in points]
        assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_refresh_dominates_at_small_m(self):
        p16 = figure2_sweep()[0]
        assert p16.refresh_energy_nj > p16.counter_energy_nj

    def test_counters_dominate_at_large_m(self):
        p64k = figure2_sweep()[-1]
        assert p64k.counter_energy_nj > p64k.refresh_energy_nj

    def test_crossover_exists(self):
        points = figure2_sweep()
        m = energy_crossover_m(points)
        assert 16 < m < 65536


class TestOptimum:
    def test_minimum_near_128(self):
        """Figure 2: the total is minimised at M = 128."""
        best = optimal_m(figure2_sweep())
        assert best in (64, 128, 256)

    def test_sca128_beats_sca65536_by_orders_of_magnitude(self):
        points = {p.n_counters: p for p in figure2_sweep()}
        assert points[128].total_nj * 50 < points[65536].total_nj


class TestCounterCaches:
    def test_cache_lines_match_iso_storage_sca(self):
        """The 2KB/8KB cache lines intersect SCA4096/SCA16384."""
        accesses = 582_000.0
        for label, equiv_m in COUNTER_CACHE_SIZES.items():
            cache = counter_cache_energy_nj(label, accesses)
            sca_equiv = counter_energy_nj(equiv_m, accesses)
            assert cache == pytest.approx(sca_equiv, rel=1e-9)

    def test_sca128_below_both_caches(self):
        """SCA128's total energy is ~1.5 orders of magnitude below the
        2KB counter cache (Section III-B)."""
        accesses = 582_000.0
        points = {p.n_counters: p for p in figure2_sweep()}
        assert points[128].total_nj * 10 < counter_cache_energy_nj("2KB", accesses)

    def test_unknown_cache_label(self):
        with pytest.raises(KeyError):
            counter_cache_energy_nj("64KB", 1000.0)


class TestRefreshModel:
    def test_rows_per_hit_shrinks_with_m(self):
        # N/M + 2 rows per hit: doubling M should roughly halve energy
        e64 = refresh_energy_nj(64, 65536, 582_000.0)
        e128 = refresh_energy_nj(128, 65536, 582_000.0)
        assert 1.6 < e64 / e128 < 2.4

    def test_scales_with_intensity(self):
        lo = refresh_energy_nj(128, 65536, 100_000.0)
        hi = refresh_energy_nj(128, 65536, 200_000.0)
        assert hi == pytest.approx(2 * lo, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            refresh_energy_nj(0, 65536, 1000.0)

    def test_measured_override(self):
        points = figure2_sweep(measured_refresh_nj={128: 1234.5})
        by_m = {p.n_counters: p for p in points}
        assert by_m[128].refresh_energy_nj == 1234.5
