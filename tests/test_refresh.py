"""Tests for refresh accounting and system configuration."""

import pytest

from repro.dram.config import (
    DUAL_CORE_2CH,
    DUAL_CORE_4CH,
    NAMED_CONFIGS,
    QUAD_CORE_2CH,
)
from repro.dram.refresh import RefreshAccountant, intervals_in


class TestRefreshAccountant:
    def test_victim_rows_accumulate(self):
        acc = RefreshAccountant(65536)
        acc.record_victim_refresh(100)
        acc.record_victim_refresh(30)
        assert acc.victim_rows == 130
        assert acc.commands == 2
        assert acc.victim_energy_nj() == pytest.approx(130.0)

    def test_interval_sealing(self):
        acc = RefreshAccountant(65536)
        acc.record_victim_refresh(100)
        acc.close_interval()
        acc.record_victim_refresh(40)
        acc.close_interval()
        assert acc.per_interval == [100, 40]
        assert acc.mean_rows_per_interval() == 70.0

    def test_mean_empty(self):
        assert RefreshAccountant(64).mean_rows_per_interval() == 0.0

    def test_power_computation(self):
        acc = RefreshAccountant(65536)
        acc.record_victim_refresh(64_000)
        # 64k nJ over 64 ms = 1 mW
        assert acc.victim_power_mw(0.064) == pytest.approx(1.0)

    def test_power_requires_positive_time(self):
        with pytest.raises(ValueError):
            RefreshAccountant(64).victim_power_mw(0.0)

    def test_rejects_negative_rows(self):
        with pytest.raises(ValueError):
            RefreshAccountant(64).record_victim_refresh(-1)

    def test_reference_constants(self):
        assert RefreshAccountant.regular_refresh_power_mw() == 2.5
        assert RefreshAccountant.regular_refresh_energy_per_interval_nj(
            65536
        ) == pytest.approx(65536.0)

    def test_intervals_in(self):
        assert intervals_in(0.64) == pytest.approx(10.0)


class TestSystemConfig:
    def test_default_matches_table1(self):
        c = DUAL_CORE_2CH
        assert c.n_cores == 2
        assert c.n_channels == 2
        assert c.banks_per_rank == 8
        assert c.rows_per_bank == 65536
        assert c.n_banks == 16
        assert c.rob_entries == 128
        assert c.address_mapping == "rw:rk:bk:ch:col:offset"

    def test_four_channel_quadruples_banks(self):
        assert DUAL_CORE_4CH.n_banks == 64
        assert DUAL_CORE_2CH.with_channels(4).n_banks == 64

    def test_quad_core_rows(self):
        assert QUAD_CORE_2CH.rows_per_bank == 131072
        assert DUAL_CORE_2CH.with_cores(4).rows_per_bank == 131072
        assert QUAD_CORE_2CH.with_cores(2).rows_per_bank == 65536

    def test_named_configs(self):
        assert set(NAMED_CONFIGS) == {
            "dual-core/2channels",
            "dual-core/4channels",
            "quad-core/2channels",
            "quad-core/4channels",
        }
        assert NAMED_CONFIGS["quad-core/4channels"].n_banks == 64

    def test_total_rows(self):
        assert DUAL_CORE_2CH.total_rows == 16 * 65536

    def test_timings_row_refresh_is_trc(self):
        t = DUAL_CORE_2CH.timings
        assert t.row_refresh_ns == t.t_rc
