"""Tests of the SSE event hub: ordering, replay, and backpressure.

The load-bearing property: publishing never blocks, so a slow or stuck
SSE consumer can never stall the simulation feeding it — it just loses
its oldest events and is told exactly how many.
"""

import asyncio
import threading
import time

from repro.server import EventHub


def run(coro):
    return asyncio.run(coro)


class TestOrderingAndDelivery:
    def test_events_arrive_in_publish_order(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")
            for i in range(5):
                hub.publish("j1", "tick", {"i": i})
            batch, done = await sub.next_batch(timeout=1)
            assert [e.data["i"] for e in batch] == [0, 1, 2, 3, 4]
            assert [e.id for e in batch] == [0, 1, 2, 3, 4]
            assert not done

        run(main())

    def test_late_subscriber_replays_ring(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            hub.publish("j1", "tick", {"i": 0})
            hub.publish("j1", "tick", {"i": 1})
            sub = hub.subscribe("j1")  # attaches after the fact
            batch, _ = await sub.next_batch(timeout=1)
            assert [e.data["i"] for e in batch] == [0, 1]

        run(main())

    def test_close_drains_then_ends(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")
            hub.publish("j1", "tick", {})
            hub.close("j1")
            batch, done = await sub.next_batch(timeout=1)
            assert len(batch) == 1 and not done  # drain first
            batch, done = await sub.next_batch(timeout=1)
            assert batch == [] and done  # then the stream ends

        run(main())

    def test_timeout_yields_empty_not_done(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")
            batch, done = await sub.next_batch(timeout=0.05)
            assert batch == [] and not done  # keep-alive case

        run(main())

    def test_publish_to_closed_or_missing_channel_is_dropped(self):
        hub = EventHub()
        assert hub.publish("ghost", "tick", {}) == -1
        hub.open("j1")
        hub.close("j1")
        assert hub.publish("j1", "tick", {}) == -1

    def test_wakeup_from_publisher_thread(self):
        # The real topology: asyncio subscriber, worker-thread publisher.
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")

            def publisher():
                time.sleep(0.05)
                hub.publish("j1", "tick", {"from": "thread"})
                hub.close("j1")

            t = threading.Thread(target=publisher)
            t.start()
            batch, done = await sub.next_batch(timeout=5)
            t.join()
            assert batch and batch[0].data == {"from": "thread"}

        run(main())


class TestBackpressure:
    def test_slow_subscriber_drops_oldest_and_counts(self):
        async def main():
            hub = EventHub(backlog=8)
            hub.open("j1")
            sub = hub.subscribe("j1")
            for i in range(20):  # overflow the ring before reading
                hub.publish("j1", "tick", {"i": i})
            batch, _ = await sub.next_batch(timeout=1)
            # Only the newest `backlog` events survive; the cursor knows
            # exactly how many it lost.
            assert [e.data["i"] for e in batch] == list(range(12, 20))
            assert sub.dropped == 12

        run(main())

    def test_publisher_never_blocks_on_stuck_subscriber(self):
        async def main():
            hub = EventHub(backlog=4)
            hub.open("j1")
            hub.subscribe("j1")  # never read from: maximally stuck
            start = time.monotonic()
            for i in range(10_000):
                hub.publish("j1", "tick", {"i": i})
            elapsed = time.monotonic() - start
            # 10k publishes into a full ring with a dead client must be
            # effectively free (no waiting on the consumer).
            assert elapsed < 2.0
            assert hub.channel_stats("j1")["published"] == 10_000
            assert hub.channel_stats("j1")["retained"] == 4

        run(main())

    def test_fresh_subscriber_unaffected_by_anothers_lag(self):
        async def main():
            hub = EventHub(backlog=8)
            hub.open("j1")
            laggard = hub.subscribe("j1")
            for i in range(30):
                hub.publish("j1", "tick", {"i": i})
            fresh = hub.subscribe("j1")
            batch, _ = await fresh.next_batch(timeout=1)
            assert [e.data["i"] for e in batch] == list(range(22, 30))
            assert fresh.dropped == 0  # per-cursor, not shared
            batch, _ = await laggard.next_batch(timeout=1)
            assert laggard.dropped == 22

        run(main())


class TestLifecycle:
    def test_open_is_idempotent(self):
        hub = EventHub()
        hub.open("j1")
        hub.publish("j1", "tick", {})
        hub.open("j1")  # must not reset the ring
        assert hub.channel_stats("j1")["published"] == 1

    def test_drop_ends_subscribers(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")
            hub.drop("j1")
            batch, done = await sub.next_batch(timeout=1)
            assert batch == [] and done

        run(main())

    def test_subscription_close_detaches(self):
        async def main():
            hub = EventHub()
            hub.open("j1")
            sub = hub.subscribe("j1")
            assert hub.channel_stats("j1")["subscribers"] == 1
            sub.close()
            assert hub.channel_stats("j1")["subscribers"] == 0

        run(main())

    def test_channel_stats_for_missing_channel(self):
        assert EventHub().channel_stats("ghost") == {
            "published": 0, "retained": 0, "subscribers": 0,
            "closed": True,
        }
