"""Removal gates for the pre-spec keyword surfaces.

ISSUE-3 kept these shims alive for one release behind
``DeprecationWarning``; ISSUE-4 removed them.  This module pins the
*removal guarantees*: every former shim now raises (``TypeError`` /
``AttributeError``) instead of silently doing something, and the
canonical spec paths stay free of deprecation warnings.  CI runs this
file as its own job so a future PR cannot quietly resurrect a shim.
"""

import warnings

import pytest

from repro.core.base import RefreshCommand
from repro.dram.config import DUAL_CORE_2CH
from repro.experiments import ExperimentSpec, Plan, SchemeSpec, run_spec
from repro.sim.runner import simulate_attack, simulate_workload, sweep
from repro.sim.simulator import TraceDrivenSimulator

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestSimulatorCtorRemoved:
    def test_config_positional_raises(self):
        with pytest.raises(TypeError, match="ExperimentSpec"):
            TraceDrivenSimulator(DUAL_CORE_2CH)

    def test_legacy_ctor_raises(self):
        with pytest.raises(TypeError):
            TraceDrivenSimulator(DUAL_CORE_2CH, "sca")

    def test_legacy_kwargs_raise(self):
        with pytest.raises(TypeError):
            TraceDrivenSimulator(
                DUAL_CORE_2CH, "sca", scale=128.0,
                n_banks_simulated=1, n_intervals=1,
            )

    def test_spec_ctor_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            TraceDrivenSimulator(fast_spec())


class TestSchemeKwargSoupRemoved:
    def test_counters_kwarg_raises(self):
        with pytest.raises(TypeError):
            simulate_workload("libq", scheme="sca", counters=128, **FAST)

    def test_pra_probability_kwarg_raises(self):
        with pytest.raises(TypeError):
            simulate_workload("libq", scheme="pra",
                              pra_probability=0.004, **FAST)

    def test_threshold_strategy_kwarg_raises(self):
        with pytest.raises(TypeError):
            simulate_workload("libq", scheme="drcat",
                              threshold_strategy="geometric", **FAST)

    def test_attack_kwarg_raises(self):
        with pytest.raises(TypeError):
            simulate_attack("kernel01", "light", "sca", counters=128, **FAST)

    def test_sweep_scheme_overrides_raises(self):
        with pytest.raises(TypeError):
            sweep(workloads=["libq"], schemes=("sca",),
                  scheme_overrides={"sca": {"counters": 128}}, **FAST)

    def test_scheme_spec_call_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_workload(
                "libq",
                scheme=SchemeSpec.create("sca", n_counters=128),
                **FAST,
            )

    def test_plain_kind_string_is_silent(self):
        # The convenience form without per-scheme parameters stays.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_workload("libq", scheme="drcat", **FAST)

    def test_spec_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spec(fast_spec())
            sweep(Plan.grid(fast_spec(), workload=["libq"]))

    def test_typed_scheme_matches_spec_numerics(self):
        """The convenience keyword path and the spec path still agree."""
        convenient = simulate_workload(
            "libq", scheme=SchemeSpec.create("sca", n_counters=128), **FAST
        )
        via_spec = run_spec(fast_spec(
            scheme=SchemeSpec.create("sca", n_counters=128)
        ))
        assert convenient.to_dict() == via_spec.to_dict()


class TestRefreshCommandSpan:
    def test_span(self):
        assert RefreshCommand(3, 12).span == 10

    def test_n_rows_alias_removed(self):
        with pytest.raises(AttributeError):
            RefreshCommand(3, 12).n_rows

    def test_span_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RefreshCommand(0, 0).span


class TestSessionSurfaceIsCanonical:
    """The new public surface stays warning-free from day one."""

    def test_session_paths_are_silent(self):
        import json

        from repro.api import Session, open_session

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            session = open_session(fast_spec())
            session.step(100)
            doc = json.loads(json.dumps(session.snapshot()))
            Session.restore(doc).result()
