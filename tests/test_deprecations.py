"""Deprecation-shim gates.

ISSUE-3 keeps the pre-spec keyword surfaces alive for one release
behind ``DeprecationWarning``s; this module pins exactly which calls
warn (so the shim can be deleted in a later PR by making these
``pytest.raises``) and that the canonical spec paths stay silent.
CI runs this file as its own job.
"""

import warnings

import pytest

from repro.core.base import RefreshCommand
from repro.dram.config import DUAL_CORE_2CH
from repro.experiments import ExperimentSpec, Plan, SchemeSpec, run_spec
from repro.sim.runner import simulate_attack, simulate_workload, sweep
from repro.sim.simulator import TraceDrivenSimulator

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestSimulatorCtorShim:
    def test_legacy_ctor_warns(self):
        with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
            TraceDrivenSimulator(DUAL_CORE_2CH, "sca", scale=128.0,
                                 n_banks_simulated=1, n_intervals=1)

    def test_spec_ctor_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            TraceDrivenSimulator(fast_spec())

    def test_legacy_ctor_still_works(self):
        with pytest.warns(DeprecationWarning):
            sim = TraceDrivenSimulator(DUAL_CORE_2CH, "drcat", scale=128.0,
                                       n_banks_simulated=1, n_intervals=1)
        from repro.workloads.suites import get_workload

        assert sim.run(get_workload("libq")).totals.accesses > 0


class TestSchemeKwargSoupShim:
    def test_counters_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="SchemeSpec.create"):
            simulate_workload("libq", scheme="sca", counters=128, **FAST)

    def test_pra_probability_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="SchemeSpec.create"):
            simulate_workload("libq", scheme="pra",
                              pra_probability=0.004, **FAST)

    def test_attack_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="SchemeSpec.create"):
            simulate_attack("kernel01", "light", "sca", counters=128, **FAST)

    def test_sweep_scheme_overrides_warns(self):
        with pytest.warns(DeprecationWarning, match="SchemeSpec.create"):
            sweep(workloads=["libq"], schemes=("sca",),
                  scheme_overrides={"sca": {"counters": 128}}, **FAST)

    def test_scheme_spec_call_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_workload(
                "libq",
                scheme=SchemeSpec.create("sca", n_counters=128),
                **FAST,
            )

    def test_plain_kind_string_is_silent(self):
        # The convenience form without per-scheme parameters stays.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate_workload("libq", scheme="drcat", **FAST)

    def test_spec_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spec(fast_spec())
            sweep(Plan.grid(fast_spec(), workload=["libq"]))

    def test_scheme_spec_plus_soup_rejected(self):
        with pytest.raises(TypeError, match="already a SchemeSpec"):
            simulate_workload("libq", scheme=SchemeSpec("sca"),
                              counters=128, **FAST)

    def test_shim_matches_spec_numerics(self):
        """The deprecated path must produce bit-identical results."""
        with pytest.warns(DeprecationWarning):
            legacy = simulate_workload("libq", scheme="sca",
                                       counters=128, **FAST)
        via_spec = run_spec(fast_spec(
            scheme=SchemeSpec.create("sca", n_counters=128)
        ))
        assert legacy.to_dict() == via_spec.to_dict()


class TestRefreshCommandSpan:
    def test_span(self):
        assert RefreshCommand(3, 12).span == 10

    def test_n_rows_alias_warns_and_matches(self):
        cmd = RefreshCommand(3, 12)
        with pytest.warns(DeprecationWarning, match="span"):
            assert cmd.n_rows == cmd.span

    def test_span_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RefreshCommand(0, 0).span
