"""Tests for the ROB-limited CPU front end."""

import pytest

from repro.cpu.rob import ROBFrontEnd
from repro.cpu.trace import TraceRecord
from repro.dram.config import DUAL_CORE_2CH


def records(gaps, op="R"):
    return [TraceRecord(g, op, i * 64) for i, g in enumerate(gaps)]


class TestScheduling:
    def test_times_monotone(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH)
        timed = fe.schedule(records([10] * 200))
        times = [t.time_ns for t in timed]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_gap_scaling_by_frequency(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH)
        timed = fe.schedule(records([3200, 3200]))
        # 3200 cycles at 3.2 GHz fetch-width 4 -> 250 ns per record
        assert timed[1].time_ns - timed[0].time_ns == pytest.approx(250.0)

    def test_write_flag_propagates(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH)
        timed = fe.schedule(records([1, 1], op="W"))
        assert all(t.is_write for t in timed)

    def test_empty_trace(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH)
        assert fe.schedule([]) == []
        assert fe.estimated_execution_time_ns([]) == 0.0


class TestROBPressure:
    def test_zero_gap_burst_throttled_by_rob(self):
        """With zero compute gaps, issue rate is bounded by ROB drain."""
        fe = ROBFrontEnd(DUAL_CORE_2CH, memory_latency_ns=100.0)
        n = 1000
        timed = fe.schedule(records([0] * n))
        span = timed[-1].time_ns - timed[0].time_ns
        # ROB of 128 entries, each occupying 100 ns:
        # steady state throughput is 128 per 100 ns -> ~780 ns for 1000
        expected = (n - 128) / 128 * 100.0
        assert span == pytest.approx(expected, rel=0.2)

    def test_large_gaps_never_stall(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH, memory_latency_ns=100.0)
        gaps = [10_000] * 50
        timed = fe.schedule(records(gaps))
        cycle_ns = 1.0 / DUAL_CORE_2CH.core_freq_ghz
        per_record = 10_000 * cycle_ns / DUAL_CORE_2CH.fetch_width
        span = timed[-1].time_ns - timed[0].time_ns
        assert span == pytest.approx(per_record * 49, rel=0.01)

    def test_execution_time_includes_last_latency(self):
        fe = ROBFrontEnd(DUAL_CORE_2CH, memory_latency_ns=75.0)
        records_ = records([100] * 10)
        exec_time = fe.estimated_execution_time_ns(records_)
        last_issue = fe.schedule(records_)[-1].time_ns
        assert exec_time == pytest.approx(last_issue + 75.0)
