"""Artifact schema round-trip, tolerance comparison, env validation."""

import json
import math

import pytest

from repro.report.compare import (
    Tolerance,
    compare_artifacts,
    render_diff,
    tolerance_for,
)
from repro.report.config import BenchConfig, EnvConfigError, fidelity_env
from repro.report.schema import (
    SCHEMA_VERSION,
    SchemaError,
    build_artifact,
    dump_artifact,
    from_json_dict,
    load_artifact,
)


def make_artifact(**overrides):
    kwargs = dict(
        name="fig_test",
        title="Test figure",
        rows=[
            {"workload": "black", "cmrpo": 4.25, "n": 7},
            {"workload": "face", "cmrpo": 1.5, "n": 3},
        ],
        columns=["workload", "cmrpo", "n"],
        engine="batched",
        scale=24.0,
        parameters={"refresh_threshold": 32768},
    )
    kwargs.update(overrides)
    return build_artifact(**kwargs)


class TestSchemaRoundTrip:
    def test_emit_load_compare_identity(self, tmp_path):
        artifact = make_artifact()
        path = dump_artifact(artifact, tmp_path / "fig_test.json")
        loaded = load_artifact(path)
        assert loaded == artifact
        assert compare_artifacts(artifact, loaded).ok

    def test_json_text_is_versioned_and_typed(self):
        doc = json.loads(make_artifact().to_json())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["kind"] == "repro-figure-artifact"
        assert doc["engine"] == "batched"
        assert doc["scale"] == 24.0
        assert isinstance(doc["seed"], int)
        assert doc["parameters"]["refresh_threshold"] == 32768

    def test_nan_and_numpy_cells_normalize(self):
        np = pytest.importorskip("numpy")
        artifact = build_artifact(
            "fig_nan", "t",
            rows=[{"a": float("nan"), "b": np.float64(1.5),
                   "c": np.int64(4)}],
            columns=["a", "b", "c"],
            engine="batched", scale=24.0,
        )
        row = artifact.rows[0]
        assert row["a"] is None
        assert row["b"] == 1.5 and isinstance(row["b"], float)
        assert row["c"] == 4 and isinstance(row["c"], int)

    def test_undeclared_row_keys_are_dropped(self):
        artifact = build_artifact(
            "fig_drop", "t",
            rows=[{"a": 1, "alias": 2}], columns=["a"],
            engine="batched", scale=24.0,
        )
        assert artifact.rows[0] == {"a": 1}

    def test_rejects_wrong_schema_version(self):
        doc = json.loads(make_artifact().to_json())
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="--update"):
            from_json_dict(doc)

    def test_rejects_missing_keys_and_bad_types(self):
        doc = json.loads(make_artifact().to_json())
        del doc["columns"]
        with pytest.raises(SchemaError, match="columns"):
            from_json_dict(doc)
        doc2 = json.loads(make_artifact().to_json())
        doc2["rows"][0]["cmrpo"] = [1, 2]
        with pytest.raises(SchemaError, match="non-scalar"):
            from_json_dict(doc2)
        with pytest.raises(SchemaError, match="kind"):
            from_json_dict({"schema_version": 1})

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_artifact(path)


class TestCompare:
    def test_exact_metric_mismatch_fails(self):
        golden = make_artifact()
        actual = make_artifact(rows=[
            {"workload": "black", "cmrpo": 4.25, "n": 8},
            {"workload": "face", "cmrpo": 1.5, "n": 3},
        ])
        diff = compare_artifacts(golden, actual)
        assert not diff.ok
        rendered = render_diff(diff)
        assert "FAIL fig_test" in rendered
        assert "workload=black" in rendered and "col n" in rendered

    def test_float_epsilon_passes_but_regression_fails(self):
        golden = make_artifact()
        wiggle = make_artifact(rows=[
            {"workload": "black", "cmrpo": 4.25 * (1 + 1e-12), "n": 7},
            {"workload": "face", "cmrpo": 1.5, "n": 3},
        ])
        assert compare_artifacts(golden, wiggle).ok
        broken = make_artifact(rows=[
            {"workload": "black", "cmrpo": 4.26, "n": 7},
            {"workload": "face", "cmrpo": 1.5, "n": 3},
        ])
        assert not compare_artifacts(golden, broken).ok

    def test_declared_tolerance_path(self):
        policy = [("fig_test", "cmrpo", Tolerance(rel_tol=0.05))]
        golden = make_artifact()
        drifted = make_artifact(rows=[
            {"workload": "black", "cmrpo": 4.30, "n": 7},
            {"workload": "face", "cmrpo": 1.52, "n": 3},
        ])
        assert compare_artifacts(golden, drifted, policy=policy).ok
        too_far = make_artifact(rows=[
            {"workload": "black", "cmrpo": 5.0, "n": 7},
            {"workload": "face", "cmrpo": 1.5, "n": 3},
        ])
        diff = compare_artifacts(golden, too_far, policy=policy)
        assert not diff.ok
        assert "declared tolerance" in render_diff(diff)

    def test_declared_tolerance_parses_numeric_strings(self):
        policy = [("fig_s", "rate", Tolerance(rel_tol=0.1))]
        golden = build_artifact("fig_s", "t", [{"rate": "1.00e-03"}],
                                ["rate"], engine="batched", scale=24.0)
        close = build_artifact("fig_s", "t", [{"rate": "1.05e-03"}],
                               ["rate"], engine="batched", scale=24.0)
        assert compare_artifacts(golden, close, policy=policy).ok

    def test_nan_equals_nan_under_tolerance(self):
        tol = Tolerance(rel_tol=0.1)
        assert tol.accepts(math.nan, math.nan)
        assert not tol.accepts(math.nan, 1.0)

    def test_structure_and_parameter_mismatches(self):
        golden = make_artifact()
        fewer = make_artifact(rows=[golden.rows[0]])
        assert any(d.kind == "structure"
                   for d in compare_artifacts(golden, fewer).differences)
        rescaled = make_artifact(scale=96.0)
        assert any(d.kind == "parameter"
                   for d in compare_artifacts(golden, rescaled).differences)

    def test_engine_is_not_compared(self):
        golden = make_artifact(engine="batched")
        scalar = make_artifact(engine="scalar")
        assert compare_artifacts(golden, scalar).ok

    def test_default_policy_lookup(self):
        assert tolerance_for("fig1_lfsr_study", "failure_rate") is not None
        assert tolerance_for("fig8_cmrpo_t32k", "DRCAT_64") is None


class TestBenchConfigEnv:
    def test_defaults(self):
        config = BenchConfig.from_env({})
        assert (config.scale, config.n_intervals, config.n_banks) == (24.0, 2, 1)
        assert config.engine == "batched" and config.workers == 1

    def test_workers_zero_means_cpu_count(self):
        config = BenchConfig.from_env({"REPRO_BENCH_WORKERS": "0"})
        assert config.workers >= 1

    @pytest.mark.parametrize("var,value", [
        ("REPRO_BENCH_WORKERS", "-2"),
        ("REPRO_BENCH_WORKERS", "many"),
        ("REPRO_BENCH_WORKERS", "1.5"),
        ("REPRO_BENCH_SCALE", "0"),
        ("REPRO_BENCH_SCALE", "nan"),
        ("REPRO_BENCH_SCALE", "fast"),
        ("REPRO_BENCH_INTERVALS", "0"),
        ("REPRO_BENCH_BANKS", "-1"),
        ("REPRO_BENCH_ENGINE", "warp"),
    ])
    def test_garbage_values_fail_with_named_variable(self, var, value):
        with pytest.raises(EnvConfigError) as excinfo:
            BenchConfig.from_env({var: value})
        message = str(excinfo.value)
        assert var in message and value in message

    def test_engine_names_match_simulator_registry(self):
        # config.py avoids importing the sim stack, so the engine list
        # is duplicated there; this pins the two registries together.
        from repro.report.config import ENGINE_NAMES
        from repro.sim.engine import ENGINES
        assert tuple(sorted(ENGINE_NAMES)) == tuple(sorted(ENGINES))

    def test_fidelity_env_rejects_unknown_names(self):
        assert fidelity_env("smoke")["REPRO_BENCH_SCALE"] == "96"
        with pytest.raises(EnvConfigError, match="unknown fidelity"):
            fidelity_env("ludicrous")
        with pytest.raises(EnvConfigError, match="unknown engine"):
            fidelity_env("ci", engine="warp")
