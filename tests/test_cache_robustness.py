"""Tests for store robustness: corrupt entries, orphaned tmp residue,
and atomic snapshot writes."""

import json

import pytest

from repro.api import Session
from repro.experiments import ExperimentSpec, ResultCache, SchemeSpec
from repro.experiments.cache import sweep_orphan_tmp
from repro.experiments.run import run_spec
from repro.testing.faults import ENV_VAR, ROUND_VAR, reset_faults

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(ROUND_VAR, raising=False)
    reset_faults()
    yield
    reset_faults()


@pytest.fixture(scope="module")
def one_result():
    return run_spec(fast_spec())


class TestCorruptResultEntries:
    @pytest.mark.parametrize("mangle", [
        lambda text: text[: len(text) // 2],          # truncated write
        lambda text: "not json at all {{{",           # garbage
        lambda text: "",                              # empty file
        lambda text: json.dumps({"result": None}),    # missing spec
    ])
    def test_corrupt_entry_is_a_miss_and_dropped(
        self, tmp_path, one_result, mangle
    ):
        spec = fast_spec()
        cache = ResultCache(tmp_path)
        path = cache.put(spec, one_result)
        path.write_text(mangle(path.read_text(encoding="utf-8")),
                        encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get(spec) is None
        assert fresh.misses == 1 and fresh.hits == 0
        assert not path.exists()  # dropped, so the next put heals it

    def test_injected_corrupt_put_degrades_to_cold_start(
        self, tmp_path, one_result, monkeypatch
    ):
        spec = fast_spec()
        cache = ResultCache(tmp_path)
        monkeypatch.setenv(ENV_VAR, "cache.put:corrupt:5")
        reset_faults()
        path = cache.put(spec, one_result)
        assert path.exists()
        fresh = ResultCache(tmp_path)
        assert fresh.get(spec) is None  # detected, not served


class TestCorruptSnapshots:
    @pytest.mark.parametrize("mangle", [
        lambda text: text[: len(text) // 2],
        lambda text: "\x00\x01\x02",
        lambda text: json.dumps({"snapshot": {}}),    # missing spec
    ])
    def test_corrupt_snapshot_is_a_miss_never_an_error(
        self, tmp_path, mangle
    ):
        spec = fast_spec()
        cache = ResultCache(tmp_path)
        session = Session(spec)
        session.advance(session.total_ns / 4)
        path = cache.put_snapshot(spec, "quarter", session.snapshot())
        path.write_text(mangle(path.read_text(encoding="utf-8")),
                        encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get_snapshot(spec, "quarter") is None
        assert fresh.misses == 1
        assert not path.exists()

    def test_snapshot_for_other_spec_is_a_miss(self, tmp_path):
        spec = fast_spec()
        other = fast_spec(workload="black")
        cache = ResultCache(tmp_path)
        session = Session(spec)
        session.advance(session.total_ns / 4)
        good = cache.put_snapshot(spec, "q", session.snapshot())
        # Simulate a hash collision / hand-copied entry: the stored doc
        # claims a different producing spec.
        doc = json.loads(good.read_text(encoding="utf-8"))
        doc["spec"] = other.to_dict()
        good.write_text(json.dumps(doc), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.get_snapshot(spec, "q") is None

    def test_intact_snapshot_round_trips(self, tmp_path):
        spec = fast_spec()
        cache = ResultCache(tmp_path)
        session = Session(spec)
        session.advance(session.total_ns / 2)
        snapshot = json.loads(json.dumps(session.snapshot()))
        cache.put_snapshot(spec, "half", snapshot)
        fresh = ResultCache(tmp_path)
        restored = fresh.get_snapshot(spec, "half")
        assert restored == snapshot
        assert Session.restore(restored).result().to_dict() == \
            Session(spec).result().to_dict()


class TestOrphanTmpSweep:
    def test_sweeps_nested_tmp_and_keeps_entries(self, tmp_path):
        (tmp_path / "v1-abc").mkdir()
        keep = tmp_path / "v1-abc" / "deadbeef.json"
        keep.write_text("{}", encoding="utf-8")
        (tmp_path / "v1-abc" / "deadbeefab12.tmp").write_text("torn")
        (tmp_path / "traces").mkdir()
        (tmp_path / "traces" / "k-i0.rows.abc.tmp").write_bytes(b"\x93")
        assert sweep_orphan_tmp(tmp_path) == 2
        assert keep.exists()
        assert sweep_orphan_tmp(tmp_path) == 0  # idempotent

    def test_missing_or_none_root_is_zero(self, tmp_path):
        assert sweep_orphan_tmp(None) == 0
        assert sweep_orphan_tmp(tmp_path / "nope") == 0

    def test_cli_cache_stats_reports_sweep(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        result_root = tmp_path / "results"
        result_root.mkdir()
        (result_root / "orphan-xyz.tmp").write_text("torn")
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(result_root))
        trace_root = tmp_path / "traces"
        assert main(["cache", "stats", "--trace-dir", str(trace_root),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tmp_removed"] == 1
        assert not (result_root / "orphan-xyz.tmp").exists()


class TestAtomicSessionSave:
    def test_save_leaves_no_tmp_residue(self, tmp_path):
        spec = fast_spec()
        session = Session(spec)
        session.advance(session.total_ns / 4)
        path = session.save(tmp_path / "snap.json")
        assert path.is_file()
        assert list(tmp_path.glob("*.tmp")) == []
        assert Session.load(path).result().to_dict() == \
            Session(spec).result().to_dict()

    def test_failed_save_preserves_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        import os as os_mod

        spec = fast_spec()
        session = Session(spec)
        target = tmp_path / "snap.json"
        session.save(target)
        before = target.read_text(encoding="utf-8")

        def broken_replace(src, dst):
            raise OSError("no rename for you")

        monkeypatch.setattr(os_mod, "replace", broken_replace)
        with pytest.raises(OSError):
            session.save(target)
        monkeypatch.undo()
        assert target.read_text(encoding="utf-8") == before
        assert list(tmp_path.glob("*.tmp")) == []
