"""Docstring coverage gate for the public API surface.

The modules enforced here (`repro.api`, `repro.experiments`,
`repro.report`, `repro.figures`) are the ones external callers build
on: every public module, class, function, method and property must
carry at least a one-line summary.  The same surface is enforced
statically by the scoped ruff pydocstyle rules in pyproject.toml; this
test is the runtime twin that works without ruff installed and also
covers methods/properties (D1 rules stop at the def level ruff sees).
"""

import importlib
import inspect
import pkgutil

import pytest

ENFORCED = ("repro.api", "repro.experiments", "repro.report",
            "repro.figures")


def _walk(modname):
    mod = importlib.import_module(modname)
    yield modname, mod
    if hasattr(mod, "__path__"):
        for info in pkgutil.iter_modules(mod.__path__):
            yield from _walk(f"{modname}.{info.name}")


def _documented(obj) -> bool:
    return bool((inspect.getdoc(obj) or "").strip())


def _missing_in(modname, mod):
    if not _documented(mod):
        yield f"{modname} (module)"
    for attr, obj in sorted(vars(mod).items()):
        if attr.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != modname:
            continue  # re-export; enforced where it is defined
        if not _documented(obj):
            yield f"{modname}.{attr}"
        if inspect.isclass(obj):
            for m_name, member in sorted(vars(obj).items()):
                if m_name.startswith("_"):
                    continue
                if isinstance(member, property):
                    fn = member.fget
                elif isinstance(member, (classmethod, staticmethod)):
                    fn = member.__func__
                elif inspect.isfunction(member):
                    fn = member
                else:
                    continue
                if not _documented(fn):
                    yield f"{modname}.{attr}.{m_name}"


@pytest.mark.parametrize("root", ENFORCED)
def test_public_surface_is_documented(root):
    missing = [entry for name, mod in _walk(root)
               for entry in _missing_in(name, mod)]
    assert not missing, (
        "public API members missing docstrings (one-line summary "
        "minimum):\n  " + "\n  ".join(missing)
    )
