"""Scheme-level tests for PRCAT and DRCAT (epoch semantics, stats)."""

import numpy as np
import pytest

from repro.core.cat import PRCATScheme
from repro.core.drcat import DRCATScheme

N_ROWS = 4096
T = 256


def drive(scheme, rows):
    commands = []
    for row in rows:
        commands.extend(scheme.access(int(row)))
    return commands


class TestPRCATScheme:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            PRCATScheme(N_ROWS, T, n_counters=48, max_levels=10)
        with pytest.raises(ValueError):
            PRCATScheme(N_ROWS, T, n_counters=64, max_levels=5)

    def test_interval_boundary_rebuilds_tree(self):
        scheme = PRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        rng = np.random.default_rng(0)
        drive(scheme, rng.integers(0, N_ROWS, size=5000))
        grown = scheme.tree.active_counters
        assert grown > 8  # pre-split for M=16 is 8 leaves
        scheme.on_interval_boundary()
        assert scheme.tree.active_counters == 8
        assert scheme.stats.resets == 1

    def test_refresh_stats_accumulate(self):
        scheme = PRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        cmds = drive(scheme, [99] * 2000)
        assert cmds
        assert scheme.stats.refresh_commands == len(cmds)
        assert scheme.stats.rows_refreshed == sum(
            c.row_count(N_ROWS) for c in cmds
        )

    def test_counters_in_use_tracks_tree(self):
        scheme = PRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        assert scheme.counters_in_use == 8
        drive(scheme, [7] * 1500)
        assert scheme.counters_in_use > 8

    def test_describe(self):
        scheme = PRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        assert "PRCAT_16" in scheme.describe()

    def test_threshold_strategy_forwarded(self):
        scheme = PRCATScheme(
            N_ROWS, T, n_counters=16, max_levels=10,
            threshold_strategy="geometric",
        )
        assert scheme.schedule.strategy == "geometric"


class TestDRCATScheme:
    def test_interval_boundary_keeps_shape(self):
        scheme = DRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        drive(scheme, [123] * 3000)
        depth_before = scheme.tree.counter_state(scheme.tree.lookup(123))[
            "level"
        ]
        scheme.on_interval_boundary()
        depth_after = scheme.tree.counter_state(scheme.tree.lookup(123))[
            "level"
        ]
        assert depth_after == depth_before  # structure persists
        assert all(
            scheme.tree.counter_state(i)["count"] == 0
            for i in range(16)
        )

    def test_interval_boundary_decays_weights(self):
        scheme = DRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        drive(scheme, [123] * 3000)
        idx = scheme.tree.lookup(123)
        w_before = scheme.tree.counter_state(idx)["weight"]
        scheme.on_interval_boundary()
        w_after = scheme.tree.counter_state(idx)["weight"]
        assert w_after == max(0, w_before - 1)

    def test_reconfigurations_counted(self):
        scheme = DRCATScheme(N_ROWS, T, n_counters=8, max_levels=11)
        rng = np.random.default_rng(1)
        drive(scheme, rng.integers(0, N_ROWS, size=4000))  # exhaust pool
        drive(scheme, [3333] * 4000)                       # new hot row
        assert scheme.reconfigurations > 0
        assert scheme.stats.merges == scheme.stats.splits
        scheme.tree.check_invariants()

    def test_drcat_beats_prcat_under_drift(self):
        """The defining DRCAT property: after mid-epoch drift, DRCAT
        refreshes fewer rows than PRCAT whose tree is stale until its
        next reset."""
        rng = np.random.default_rng(2)
        phases = [
            rng.integers(0, N_ROWS, size=1)[0] for _ in range(4)
        ]

        def stream():
            rng2 = np.random.default_rng(3)
            rows = []
            for hot in phases:
                for _ in range(6000):
                    if rng2.random() < 0.7:
                        rows.append(int(hot))
                    else:
                        rows.append(int(rng2.integers(0, N_ROWS)))
            return rows

        prcat = PRCATScheme(N_ROWS, T, n_counters=16, max_levels=11)
        drcat = DRCATScheme(N_ROWS, T, n_counters=16, max_levels=11)
        drive(prcat, stream())
        drive(drcat, stream())
        assert drcat.stats.rows_refreshed < prcat.stats.rows_refreshed

    def test_rejects_out_of_range_rows(self):
        scheme = DRCATScheme(N_ROWS, T, n_counters=16, max_levels=10)
        with pytest.raises(ValueError):
            scheme.access(N_ROWS)
