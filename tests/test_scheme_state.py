"""SchemeState protocol: capture/restore fidelity at the object level.

The session-level tests prove end-to-end bit-identity; these tests pin
the protocol itself: for every registered scheme, ``to_state`` is
JSON-serializable, ``restore_state`` onto a freshly built instance
reproduces the *future behaviour* exactly (same commands on the same
continuation stream, same statistics), and mismatched states are
rejected instead of silently corrupting.
"""

import json

import numpy as np
import pytest

from repro.analysis.prng import (
    CountingPRNG,
    LFSRPRNG,
    TrueRandomPRNG,
    prng_from_state,
)
from repro.core import make_scheme
from repro.core.registry import get_scheme_info, scheme_names
from repro.dram.bank import BankState
from repro.dram.config import SystemConfig
from repro.dram.memory_system import MemorySystem

N_ROWS = 4096
T = 256


def build(kind: str):
    """A small, eventful instance of one registered scheme."""
    info = get_scheme_info(kind)
    params = dict(info.safety_overrides.get("params", {}))
    return make_scheme(kind, N_ROWS, T, **params)


def stream(seed: int, n: int) -> list[int]:
    rng = np.random.default_rng(seed)
    # Skewed: a hot row plus background, so counters cross thresholds.
    hot = rng.random(n) < 0.5
    rows = rng.integers(0, N_ROWS, size=n)
    rows[hot] = 17
    return [int(r) for r in rows]


def drive(scheme, rows):
    """Feed rows; return the (position, command-tuple) event history."""
    out = []
    for i, row in enumerate(rows):
        for cmd in scheme.access(row):
            out.append((i, cmd.low, cmd.high, cmd.reason))
    return out


@pytest.mark.parametrize("kind", scheme_names())
class TestSchemeStateRoundTrip:
    def test_future_behaviour_identical(self, kind):
        prefix, suffix = stream(3, 4000), stream(4, 4000)
        original = build(kind)
        drive(original, prefix)
        state = json.loads(json.dumps(original.to_state()))

        clone = build(kind)
        clone.restore_state(state)
        assert drive(clone, suffix) == drive(original, suffix)
        assert clone.stats.snapshot() == original.stats.snapshot()

    def test_state_is_json_serializable(self, kind):
        scheme = build(kind)
        drive(scheme, stream(5, 1000))
        json.dumps(scheme.to_state())  # must not raise

    def test_batch_path_after_restore(self, kind):
        """access_batch on a restored scheme equals the original's."""
        prefix = stream(6, 3000)
        original = build(kind)
        drive(original, prefix)
        clone = build(kind)
        clone.restore_state(json.loads(json.dumps(original.to_state())))
        batch = np.asarray(stream(7, 3000), dtype=np.int64)
        events_a = [
            (p, [(c.low, c.high, c.reason) for c in cmds])
            for p, cmds in original.access_batch(batch.copy())
        ]
        events_b = [
            (p, [(c.low, c.high, c.reason) for c in cmds])
            for p, cmds in clone.access_batch(batch.copy())
        ]
        assert events_a == events_b
        assert clone.stats.snapshot() == original.stats.snapshot()


class TestTreeStateIntegrity:
    def test_restored_tree_passes_invariants(self):
        scheme = build("drcat")
        drive(scheme, stream(8, 6000))
        clone = build("drcat")
        clone.restore_state(json.loads(json.dumps(scheme.to_state())))
        clone.tree.check_invariants()
        assert clone.tree.partition() == scheme.tree.partition()
        assert clone.tree.depth_histogram() == scheme.tree.depth_histogram()

    def test_free_list_order_preserved(self):
        """Splits pop from the free-list tail; order is behavioural."""
        scheme = build("drcat")
        drive(scheme, stream(9, 6000))
        state = scheme.to_state()
        clone = build("drcat")
        clone.restore_state(state)
        assert clone.tree._free_counters == scheme.tree._free_counters
        assert clone.tree._free_inodes == scheme.tree._free_inodes

    def test_wrong_size_state_rejected(self):
        scheme = build("sca")
        state = scheme.to_state()
        state["counts"] = state["counts"][:-1]
        with pytest.raises(ValueError, match="counters"):
            build("sca").restore_state(state)


class TestPrngState:
    @pytest.mark.parametrize("prng", [
        TrueRandomPRNG(seed=42), LFSRPRNG(width=16), CountingPRNG(5),
    ])
    def test_stream_continues_exactly(self, prng):
        [prng.next_bits(9) for _ in range(137)]
        clone = prng_from_state(json.loads(json.dumps(prng.to_state())))
        assert [clone.next_bits(9) for _ in range(200)] == \
            [prng.next_bits(9) for _ in range(200)]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown PRNG kind"):
            prng_from_state({"kind": "quantum"})

    def test_lfsr_width_mismatch_rejected(self):
        state = LFSRPRNG(width=16).to_state()
        with pytest.raises(ValueError, match="width"):
            LFSRPRNG(width=24).restore_state(state)


class TestSubstrateState:
    def test_bank_state_round_trip(self):
        bank = BankState(SystemConfig().timings)
        bank.serve_access(10.0)
        bank.serve_refresh(20.0, 64)
        bank.serve_access(25.0)
        clone = BankState(SystemConfig().timings)
        clone.restore_state(json.loads(json.dumps(bank.to_state())))
        assert clone == bank

    def test_memory_system_round_trip(self):
        config = SystemConfig(rows_per_bank=N_ROWS)

        def factory(n_rows):
            return make_scheme("drcat", n_rows, T,
                               n_counters=8, max_levels=6)

        rng = np.random.default_rng(11)
        times = np.sort(rng.uniform(0, 5e6, size=3000))
        banks = rng.integers(0, 4, size=3000)
        rows = rng.integers(0, N_ROWS, size=3000)
        system = MemorySystem(config, factory, epoch_s=1e-3)
        for t, b, r in zip(times, banks, rows):
            system.access(float(t), int(b), int(r))

        clone = MemorySystem(config, factory, epoch_s=1e-3)
        clone.restore_state(json.loads(json.dumps(system.to_state())))
        assert clone.total_stall_ns == system.total_stall_ns
        assert clone.epochs_completed == system.epochs_completed
        assert clone.scheme_stats() == system.scheme_stats()
        # Future behaviour agrees too.
        for t, b, r in zip(times, banks, rows):
            assert system.access(float(t) + 5e6, int(b), int(r)) == \
                clone.access(float(t) + 5e6, int(b), int(r))

    def test_scheme_layout_mismatch_rejected(self):
        config = SystemConfig(rows_per_bank=N_ROWS)
        protected = MemorySystem(
            config, lambda n: make_scheme("sca", n, T), active_banks=1
        )
        unprotected = MemorySystem(config, None)
        with pytest.raises(ValueError, match="layout"):
            unprotected.restore_state(protected.to_state())

    def test_scheme_kind_mismatch_rejected(self):
        config = SystemConfig(rows_per_bank=N_ROWS)
        sca = MemorySystem(config, lambda n: make_scheme("sca", n, T))
        pra = MemorySystem(config, lambda n: make_scheme("pra", n, T))
        with pytest.raises(ValueError, match="scheme"):
            pra.restore_state(sca.to_state())
