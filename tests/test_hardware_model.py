"""Tests for the Table II hardware energy/area model."""

import pytest

from repro.energy.hardware_model import (
    TABLE2,
    TABLE2_L,
    TABLE2_M,
    TABLE2_T,
    iso_area_counters,
    pra_hardware,
    scheme_hardware,
)


class TestAnchors:
    @pytest.mark.parametrize("scheme", ["drcat", "prcat", "sca"])
    @pytest.mark.parametrize("i,m", list(enumerate(TABLE2_M)))
    def test_anchor_values_exact(self, scheme, i, m):
        hw = scheme_hardware(scheme, m, TABLE2_T, TABLE2_L)
        assert hw.dynamic_nj_per_access == pytest.approx(
            TABLE2[scheme]["dynamic"][i], rel=1e-9
        )
        assert hw.static_nj_per_interval == pytest.approx(
            TABLE2[scheme]["static"][i], rel=1e-9
        )
        assert hw.area_mm2 == pytest.approx(TABLE2[scheme]["area"][i], rel=1e-9)

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            scheme_hardware("pra", 64)


class TestInterpolation:
    def test_interpolated_m_between_anchors(self):
        hw96 = scheme_hardware("sca", 96)
        hw64 = scheme_hardware("sca", 64)
        hw128 = scheme_hardware("sca", 128)
        assert hw64.static_nj_per_interval < hw96.static_nj_per_interval
        assert hw96.static_nj_per_interval < hw128.static_nj_per_interval

    def test_extrapolation_beyond_512(self):
        hw1024 = scheme_hardware("sca", 1024)
        assert hw1024.static_nj_per_interval > scheme_hardware("sca", 512).static_nj_per_interval

    def test_extrapolation_below_32(self):
        hw16 = scheme_hardware("sca", 16)
        assert hw16.static_nj_per_interval < scheme_hardware("sca", 32).static_nj_per_interval

    def test_monotone_in_m(self):
        for scheme in ("drcat", "prcat", "sca"):
            values = [
                scheme_hardware(scheme, m).area_mm2
                for m in (16, 32, 64, 128, 256, 512, 1024)
            ]
            assert all(b > a for a, b in zip(values, values[1:]))


class TestThresholdScaling:
    def test_smaller_t_means_smaller_counters(self):
        hw16k = scheme_hardware("prcat", 64, 16384)
        hw32k = scheme_hardware("prcat", 64, 32768)
        assert hw16k.static_nj_per_interval < hw32k.static_nj_per_interval
        assert hw16k.area_mm2 < hw32k.area_mm2

    def test_width_ratio(self):
        hw16k = scheme_hardware("sca", 64, 16384)
        hw32k = scheme_hardware("sca", 64, 32768)
        assert hw16k.static_nj_per_interval / hw32k.static_nj_per_interval == (
            pytest.approx(14 / 15)
        )

    def test_counter_bits(self):
        assert scheme_hardware("sca", 64, 32768).counter_bits == 15
        assert scheme_hardware("drcat", 64, 32768).counter_bits == 17
        assert scheme_hardware("prcat", 64, 16384).counter_bits == 14


class TestDepthScaling:
    def test_deeper_tree_costs_more_dynamic(self):
        shallow = scheme_hardware("drcat", 64, max_levels=9)
        deep = scheme_hardware("drcat", 64, max_levels=14)
        assert deep.dynamic_nj_per_access > shallow.dynamic_nj_per_access

    def test_sca_ignores_depth(self):
        a = scheme_hardware("sca", 64, max_levels=9)
        b = scheme_hardware("sca", 64, max_levels=14)
        assert a.dynamic_nj_per_access == b.dynamic_nj_per_access


class TestPaperRelations:
    def test_prcat_and_sca_iso_area_at_double_counters(self):
        """Section VII-A: PRCAT64 and SCA128 occupy roughly equal area."""
        prcat64 = scheme_hardware("prcat", 64).area_mm2
        sca128 = scheme_hardware("sca", 128).area_mm2
        assert prcat64 == pytest.approx(sca128, rel=0.05)

    def test_iso_area_helper_finds_sca128(self):
        assert iso_area_counters("prcat", 64, "sca") == 128

    def test_drcat_area_slightly_above_prcat(self):
        """DRCAT adds ~4% for the weight registers (Section VII-A)."""
        for m in TABLE2_M:
            drcat = scheme_hardware("drcat", m).area_mm2
            prcat = scheme_hardware("prcat", m).area_mm2
            assert 1.0 < drcat / prcat < 1.10

    def test_sca_dynamic_roughly_half_of_prcat(self):
        """PRCAT's dynamic energy is about twice SCA's (multi-access)."""
        for m in TABLE2_M:
            ratio = (
                scheme_hardware("prcat", m).dynamic_nj_per_access
                / scheme_hardware("sca", m).dynamic_nj_per_access
            )
            assert 1.5 < ratio < 3.0


class TestPRNG:
    def test_energy_per_access(self):
        prng = pra_hardware()
        assert prng.energy_per_access_nj == pytest.approx(2.61e-2, rel=0.01)

    def test_fifty_accesses_equal_one_row_refresh(self):
        """The paper: every ~50 accesses PRA spends one row refresh (1 nJ)."""
        prng = pra_hardware()
        assert 50 * prng.energy_per_access_nj == pytest.approx(1.0, rel=0.35)

    def test_spec_constants(self):
        prng = pra_hardware()
        assert prng.power_mw == 7.0
        assert prng.throughput_gbps == 2.4
        assert prng.area_mm2 == pytest.approx(4.004e-3)
