"""Tests for the workload suite and synthetic stream generators."""

import numpy as np
import pytest

from repro.workloads.suites import (
    SUITES,
    WORKLOAD_ORDER,
    WORKLOADS,
    get_workload,
    phase_layouts,
    row_frequency_histogram,
)
from repro.workloads.synthetic import (
    StreamModel,
    interarrival_times_ns,
    single_aggressor_stream,
    uniform_stream,
)


class TestSuiteCatalogue:
    def test_eighteen_workloads(self):
        assert len(WORKLOADS) == 18
        assert len(WORKLOAD_ORDER) == 18

    def test_suite_membership(self):
        assert len(SUITES["COMM"]) == 5
        assert len(SUITES["PARSEC"]) == 7
        assert len(SUITES["SPEC"]) == 4
        assert len(SUITES["BIO"]) == 2

    def test_figure8_order(self):
        assert WORKLOAD_ORDER[0] == "comm1"
        assert WORKLOAD_ORDER[-1] == "tigr"

    def test_lookup(self):
        assert get_workload("black").suite == "PARSEC"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_seeds_are_stable_and_distinct(self):
        seeds = [spec.seed for spec in WORKLOADS.values()]
        assert len(set(seeds)) == len(seeds)

    def test_rng_reproducible(self):
        spec = get_workload("comm1")
        a = spec.rng().integers(0, 1000, 10)
        b = spec.rng().integers(0, 1000, 10)
        assert list(a) == list(b)


class TestRowFrequency:
    def test_histogram_length(self):
        hist = row_frequency_histogram(get_workload("black"), 65536, 50_000)
        assert len(hist) == 65536
        assert hist.sum() == 50_000

    def test_blackscholes_concentration(self):
        """Figure 3: a small row group dominates accesses."""
        hist = row_frequency_histogram(get_workload("black"), 65536, 50_000)
        top = np.sort(hist)[::-1]
        assert top[:64].sum() > 0.5 * hist.sum()

    def test_streaming_workload_spread(self):
        """libquantum approaches a uniform sweep."""
        hist = row_frequency_histogram(get_workload("libq"), 65536, 50_000)
        top = np.sort(hist)[::-1]
        assert top[:64].sum() < 0.4 * hist.sum()

    def test_phases_move_hot_sets(self):
        spec = get_workload("black")
        h0 = row_frequency_histogram(spec, 4096, 20_000, phase=0)
        h1 = row_frequency_histogram(spec, 4096, 20_000, phase=1)
        hot0 = set(np.argsort(h0)[-10:])
        hot1 = set(np.argsort(h1)[-10:])
        assert hot0 != hot1


class TestStreamModel:
    def test_sample_length_and_range(self):
        model = get_workload("comm1").stream_model(4096)
        rng = np.random.default_rng(0)
        layout = model.phase_layout(rng)
        rows = model.sample(rng, 5000, layout)
        assert len(rows) == 5000
        assert rows.min() >= 0 and rows.max() < 4096

    def test_zero_accesses(self):
        model = uniform_stream(1024)
        rng = np.random.default_rng(0)
        layout = model.phase_layout(rng)
        assert len(model.sample(rng, 0, layout)) == 0

    def test_uniform_stream_has_no_hot_set(self):
        model = uniform_stream(1024)
        rng = np.random.default_rng(1)
        layout = model.phase_layout(rng)
        rows = model.sample(rng, 20_000, layout)
        hist = np.bincount(rows, minlength=1024)
        assert hist.max() < 0.01 * len(rows)

    def test_single_aggressor_dominates(self):
        model = single_aggressor_stream(1024, hot_fraction=0.9)
        rng = np.random.default_rng(2)
        layout = model.phase_layout(rng)
        rows = model.sample(rng, 10_000, layout)
        hist = np.bincount(rows, minlength=1024)
        assert hist.max() >= 0.85 * len(rows)

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamModel(0, 1, 0.5, 1, 1.0, 1)
        with pytest.raises(ValueError):
            StreamModel(64, 1, 1.5, 1, 1.0, 64)
        with pytest.raises(ValueError):
            StreamModel(64, 0, 0.5, 1, 1.0, 64)  # hot_fraction needs hot rows
        with pytest.raises(ValueError):
            StreamModel(64, 1, 0.5, 0, 1.0, 64)

    def test_phase_layouts_per_workload(self):
        spec = get_workload("comm3")
        layouts = phase_layouts(spec, 4096)
        assert len(layouts) == spec.phase_count


class TestInterarrival:
    def test_times_fit_duration(self):
        rng = np.random.default_rng(0)
        times = interarrival_times_ns(rng, 1000, 64e6)
        assert len(times) == 1000
        assert times[0] > 0
        assert times[-1] < 64e6
        assert np.all(np.diff(times) >= 0)

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert len(interarrival_times_ns(rng, 0, 1e6)) == 0

    def test_mean_rate(self):
        rng = np.random.default_rng(1)
        times = interarrival_times_ns(rng, 10_000, 1e6)
        mean_gap = np.diff(times).mean()
        assert mean_gap == pytest.approx(1e6 / 10_000, rel=0.05)
