"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "black"
        assert args.scheme == "drcat"
        assert args.threshold == 32768

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])


FAST = ["--scale", "128", "--banks", "1", "--intervals", "1"]


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        assert "CMRPO" in out and "drcat" in out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        for scheme in ("pra", "sca", "prcat", "drcat"):
            assert scheme in out

    def test_attack(self, capsys):
        assert main(
            ["attack", "--kernel", "kernel02", "--mode", "light",
             "--scheme", "sca", *FAST]
        ) == 0
        assert "kernel02" in capsys.readouterr().out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "comm1" in out and "tigr" in out
        assert out.count("\n") >= 19

    def test_hardware_table(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "sca_32" in out and "drcat_512" in out and "PRNG" in out

    def test_hardware_single_m(self, capsys):
        assert main(["hardware", "--counters", "64"]) == 0
        out = capsys.readouterr().out
        assert "sca_64" in out and "sca_32" not in out
