"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "black"
        assert args.scheme == "drcat"
        assert args.threshold == 32768

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])


FAST = ["--scale", "128", "--banks", "1", "--intervals", "1"]


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        assert "CMRPO" in out and "drcat" in out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        for scheme in ("pra", "sca", "prcat", "drcat"):
            assert scheme in out

    def test_attack(self, capsys):
        assert main(
            ["attack", "--kernel", "kernel02", "--mode", "light",
             "--scheme", "sca", *FAST]
        ) == 0
        assert "kernel02" in capsys.readouterr().out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "comm1" in out and "tigr" in out
        assert out.count("\n") >= 19

    def test_hardware_table(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "sca_32" in out and "drcat_512" in out and "PRNG" in out

    def test_hardware_single_m(self, capsys):
        assert main(["hardware", "--counters", "64"]) == 0
        out = capsys.readouterr().out
        assert "sca_64" in out and "sca_32" not in out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestStreamingCommands:
    def test_run_stream_prints_epoch_lines(self, capsys):
        assert main(["run", "--workload", "libq", "--stream", *FAST,
                     "--intervals", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("epoch ") == 2
        assert "eto=" in out and "CMRPO" in out

    def test_stream_result_matches_batch(self, capsys):
        args = ["run", "--workload", "libq", "--json", *FAST]
        assert main(args) == 0
        batch = capsys.readouterr().out
        assert main([*args, "--stream"]) == 0
        streamed = capsys.readouterr().out
        # Same JSON document after the per-epoch progress lines.
        json_part = "\n".join(
            line for line in streamed.splitlines()
            if not line.startswith("epoch ")
        ) + "\n"
        assert json_part == batch

    def test_snapshot_then_resume_matches_batch(self, tmp_path, capsys):
        args = ["run", "--workload", "libq", "--scheme", "sca", *FAST]
        assert main([*args, "--json"]) == 0
        batch_out = capsys.readouterr().out
        import json as json_mod

        batch = json_mod.loads(batch_out)
        snap = tmp_path / "half.json"
        assert main([*args, "--snapshot-at", "250000",
                     "--snapshot-to", str(snap)]) == 0
        assert "snapshot at" in capsys.readouterr().out
        assert snap.is_file()
        assert main(["resume", str(snap), "--json"]) == 0
        resumed_out = capsys.readouterr().out
        resumed = json_mod.loads(resumed_out.split("\n", 1)[1])
        assert resumed == batch

    def test_snapshot_at_requires_destination(self, capsys):
        assert main(["run", "--workload", "libq", *FAST,
                     "--snapshot-at", "1000"]) == 2
        assert "--snapshot-to" in capsys.readouterr().out

    def test_snapshot_to_alone_is_an_error(self, tmp_path, capsys):
        """--snapshot-to without --snapshot-at (and no checkpoint_every
        spec policy) must fail loudly, not silently skip the snapshot."""
        assert main(["run", "--workload", "libq", *FAST,
                     "--snapshot-to", str(tmp_path / "s.json")]) == 2
        assert "--snapshot-at" in capsys.readouterr().out
        assert not (tmp_path / "s.json").exists()

    def test_resume_missing_file_is_error(self, capsys):
        assert main(["resume", "/nonexistent/snap.json"]) == 2
        assert "error" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_reports_both_stores(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "cells"))
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["results"]["entries"] == 0
        assert doc["traces"]["entries"] == 0
        assert str(tmp_path) in doc["traces"]["root"]

    def test_clear_removes_trace_entries(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.experiments import ExperimentSpec, SchemeSpec
        from repro.sim import tracestore
        from repro.sim.simulator import TraceDrivenSimulator

        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "cells"))
        tracestore._STORES.clear()
        TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec("sca"), workload="black",
            scale=96.0, n_banks=1, n_intervals=1,
        )).run()
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces"]["entries"] == 1
        assert main(["cache", "clear", "--traces"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces"]["entries"] == 0
        tracestore._STORES.clear()


class TestRobustnessFlags:
    """--max-retries / --cell-timeout / --keep-going / --report."""

    @pytest.fixture(autouse=True)
    def clean_faults(self, monkeypatch):
        from repro.testing.faults import ENV_VAR, ROUND_VAR, reset_faults

        monkeypatch.delenv(ENV_VAR, raising=False)
        monkeypatch.delenv(ROUND_VAR, raising=False)
        reset_faults()
        yield
        reset_faults()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.max_retries == 2
        assert args.cell_timeout is None
        assert args.keep_going is False
        assert args.report is None
        args = build_parser().parse_args(
            ["plan", "--run", "--keep-going", "--max-retries", "0",
             "--cell-timeout", "30"]
        )
        assert args.keep_going and args.max_retries == 0
        assert args.cell_timeout == 30.0

    def test_injected_fault_retried_transparently(self, capsys,
                                                  monkeypatch):
        from repro.testing.faults import ENV_VAR, reset_faults

        monkeypatch.setenv(ENV_VAR, "session.advance:raise:51")
        reset_faults()
        assert main(["sweep", "--workloads", "libq",
                     "--schemes", "sca", "drcat", *FAST]) == 0
        assert "libq/drcat" in capsys.readouterr().out

    def test_permanent_failure_exits_nonzero_with_summary(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        from repro.testing.faults import ENV_VAR, reset_faults

        monkeypatch.setenv(ENV_VAR, "session.advance:raise:52")
        reset_faults()
        report_path = tmp_path / "report.json"
        assert main(["sweep", "--workloads", "libq",
                     "--schemes", "sca", "drcat", *FAST,
                     "--keep-going", "--max-retries", "0",
                     "--report", str(report_path)]) == 1
        out = capsys.readouterr().out
        assert "failed cells:" in out
        assert "InjectedFault" in out
        doc = json.loads(report_path.read_text(encoding="utf-8"))
        assert doc["ok"] is False
        assert doc["counts"] == {"ok": 1, "failed": 1}

    def test_keep_going_report_on_success(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        assert main(["sweep", "--workloads", "libq", "--schemes", "sca",
                     *FAST, "--keep-going", "--report", str(report_path),
                     "--json"]) == 0
        out = capsys.readouterr().out
        assert json.loads(out)["libq/sca"] is not None
        doc = json.loads(report_path.read_text(encoding="utf-8"))
        assert doc["ok"] is True and doc["counts"] == {"ok": 1}

    def test_plan_run_keep_going(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.testing.faults import ENV_VAR, reset_faults

        plan_doc = {
            "kind": "repro-experiment-plan",
            "plan_version": 1,
            "base": {
                "scheme": {"kind": "drcat", "params": {}, "label": None},
                "workload": "libq", "scale": 128.0, "n_banks": 1,
                "n_intervals": 1,
            },
            "axes": [["scheme", [
                {"kind": "sca", "params": {}, "label": None},
                {"kind": "drcat", "params": {}, "label": None},
            ]]],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan_doc), encoding="utf-8")
        monkeypatch.setenv(ENV_VAR, "session.advance:raise:53")
        reset_faults()
        assert main(["plan", "--spec", str(plan_path), "--run",
                     "--keep-going", "--max-retries", "0", "--json"]) == 1
        out = capsys.readouterr().out
        cells = json.loads(out)
        assert [c["result"] is None for c in cells] == [True, False]
