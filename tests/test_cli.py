"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "black"
        assert args.scheme == "drcat"
        assert args.threshold == 32768

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "doom"])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "magic"])


FAST = ["--scale", "128", "--banks", "1", "--intervals", "1"]


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        assert "CMRPO" in out and "drcat" in out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "libq", *FAST]) == 0
        out = capsys.readouterr().out
        for scheme in ("pra", "sca", "prcat", "drcat"):
            assert scheme in out

    def test_attack(self, capsys):
        assert main(
            ["attack", "--kernel", "kernel02", "--mode", "light",
             "--scheme", "sca", *FAST]
        ) == 0
        assert "kernel02" in capsys.readouterr().out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "comm1" in out and "tigr" in out
        assert out.count("\n") >= 19

    def test_hardware_table(self, capsys):
        assert main(["hardware"]) == 0
        out = capsys.readouterr().out
        assert "sca_32" in out and "drcat_512" in out and "PRNG" in out

    def test_hardware_single_m(self, capsys):
        assert main(["hardware", "--counters", "64"]) == 0
        out = capsys.readouterr().out
        assert "sca_64" in out and "sca_32" not in out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


class TestStreamingCommands:
    def test_run_stream_prints_epoch_lines(self, capsys):
        assert main(["run", "--workload", "libq", "--stream", *FAST,
                     "--intervals", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("epoch ") == 2
        assert "eto=" in out and "CMRPO" in out

    def test_stream_result_matches_batch(self, capsys):
        args = ["run", "--workload", "libq", "--json", *FAST]
        assert main(args) == 0
        batch = capsys.readouterr().out
        assert main([*args, "--stream"]) == 0
        streamed = capsys.readouterr().out
        # Same JSON document after the per-epoch progress lines.
        json_part = "\n".join(
            line for line in streamed.splitlines()
            if not line.startswith("epoch ")
        ) + "\n"
        assert json_part == batch

    def test_snapshot_then_resume_matches_batch(self, tmp_path, capsys):
        args = ["run", "--workload", "libq", "--scheme", "sca", *FAST]
        assert main([*args, "--json"]) == 0
        batch_out = capsys.readouterr().out
        import json as json_mod

        batch = json_mod.loads(batch_out)
        snap = tmp_path / "half.json"
        assert main([*args, "--snapshot-at", "250000",
                     "--snapshot-to", str(snap)]) == 0
        assert "snapshot at" in capsys.readouterr().out
        assert snap.is_file()
        assert main(["resume", str(snap), "--json"]) == 0
        resumed_out = capsys.readouterr().out
        resumed = json_mod.loads(resumed_out.split("\n", 1)[1])
        assert resumed == batch

    def test_snapshot_at_requires_destination(self, capsys):
        assert main(["run", "--workload", "libq", *FAST,
                     "--snapshot-at", "1000"]) == 2
        assert "--snapshot-to" in capsys.readouterr().out

    def test_snapshot_to_alone_is_an_error(self, tmp_path, capsys):
        """--snapshot-to without --snapshot-at (and no checkpoint_every
        spec policy) must fail loudly, not silently skip the snapshot."""
        assert main(["run", "--workload", "libq", *FAST,
                     "--snapshot-to", str(tmp_path / "s.json")]) == 2
        assert "--snapshot-at" in capsys.readouterr().out
        assert not (tmp_path / "s.json").exists()

    def test_resume_missing_file_is_error(self, capsys):
        assert main(["resume", "/nonexistent/snap.json"]) == 2
        assert "error" in capsys.readouterr().out


class TestCacheCommand:
    def test_stats_reports_both_stores(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "cells"))
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["results"]["entries"] == 0
        assert doc["traces"]["entries"] == 0
        assert str(tmp_path) in doc["traces"]["root"]

    def test_clear_removes_trace_entries(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.experiments import ExperimentSpec, SchemeSpec
        from repro.sim import tracestore
        from repro.sim.simulator import TraceDrivenSimulator

        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "cells"))
        tracestore._STORES.clear()
        TraceDrivenSimulator(ExperimentSpec(
            scheme=SchemeSpec("sca"), workload="black",
            scale=96.0, n_banks=1, n_intervals=1,
        )).run()
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces"]["entries"] == 1
        assert main(["cache", "clear", "--traces"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces"]["entries"] == 0
        tracestore._STORES.clear()
