"""Tests for the end-to-end trace replay pipeline."""

import io

import pytest

from repro.cpu.trace import read_trace, write_trace
from repro.dram.config import SystemConfig
from repro.sim.replay import ReplayResult, replay_trace, synthesize_trace
from repro.workloads.suites import get_workload

CONFIG = SystemConfig(rows_per_bank=4096)


class TestSynthesize:
    def test_record_count(self):
        records = synthesize_trace(get_workload("black"), CONFIG, 1000)
        assert len(records) == 1000

    def test_addresses_decode_in_range(self):
        from repro.dram.address import AddressMapper

        mapper = AddressMapper(CONFIG)
        records = synthesize_trace(get_workload("comm1"), CONFIG, 500)
        for record in records:
            decoded = mapper.decode(record.address)
            assert 0 <= decoded.row < CONFIG.rows_per_bank
            assert decoded.flat_bank(CONFIG) < CONFIG.n_banks

    def test_deterministic(self):
        a = synthesize_trace(get_workload("black"), CONFIG, 300)
        b = synthesize_trace(get_workload("black"), CONFIG, 300)
        assert a == b

    def test_read_write_mix(self):
        records = synthesize_trace(get_workload("comm1"), CONFIG, 2000)
        reads = sum(1 for r in records if r.op == "R")
        spec = get_workload("comm1")
        assert reads / len(records) == pytest.approx(spec.read_fraction, abs=0.08)

    def test_empty(self):
        assert synthesize_trace(get_workload("black"), CONFIG, 0) == []

    def test_roundtrips_through_trace_format(self):
        records = synthesize_trace(get_workload("mum"), CONFIG, 100)
        buf = io.StringIO()
        write_trace(records, buf)
        buf.seek(0)
        assert list(read_trace(buf)) == records


class TestReplay:
    def _trace(self, workload="black", n=4000):
        return synthesize_trace(get_workload(workload), CONFIG, n)

    def test_replay_produces_result(self):
        result = replay_trace(
            self._trace(), CONFIG, scheme="drcat", refresh_threshold=256
        )
        assert isinstance(result, ReplayResult)
        assert result.requests == 4000
        assert result.activations > 0
        assert result.execution_time_ns > 0

    def test_coalescing_reduces_activations(self):
        """Same-row bursts coalesce, so activations <= requests."""
        result = replay_trace(
            self._trace(), CONFIG, scheme="sca", refresh_threshold=256
        )
        assert result.activations <= result.requests

    def test_skewed_trace_triggers_refreshes(self):
        result = replay_trace(
            self._trace("black"), CONFIG, scheme="sca", refresh_threshold=128
        )
        assert result.refresh_commands > 0
        assert result.rows_refreshed > 0

    def test_cat_refreshes_fewer_rows_than_sca(self):
        trace = self._trace("black", 8000)
        sca = replay_trace(trace, CONFIG, scheme="sca", refresh_threshold=128)
        drcat = replay_trace(
            trace, CONFIG, scheme="drcat", refresh_threshold=128, max_levels=11
        )
        assert drcat.rows_refreshed < sca.rows_refreshed

    def test_eto_fraction(self):
        result = replay_trace(
            self._trace(), CONFIG, scheme="sca", refresh_threshold=128
        )
        assert 0.0 <= result.eto < 1.0

    def test_pra_scheme_in_pipeline(self):
        result = replay_trace(
            self._trace(),
            CONFIG,
            scheme="pra",
            refresh_threshold=256,
            pra_probability=0.01,
        )
        assert result.rows_refreshed > 0

    def test_empty_trace(self):
        result = replay_trace([], CONFIG, scheme="drcat")
        assert result.requests == 0
        assert result.eto == 0.0
