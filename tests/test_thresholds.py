"""Tests for the split-threshold schedules (Section IV-D)."""

import pytest

from repro.core.thresholds import PAPER_THRESHOLDS, SplitThresholds


class TestPaperAnchor:
    def test_published_values_returned_verbatim(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="paper")
        assert st.values == (5155, 10309, 12886, 16384, 32768)

    def test_auto_selects_paper_for_anchor_config(self):
        st = SplitThresholds.create(32768, 64, 10)
        assert st.strategy == "paper"
        assert st.values == PAPER_THRESHOLDS[(32768, 64, 10)]

    def test_auto_falls_back_to_model_elsewhere(self):
        st = SplitThresholds.create(32768, 64, 11)
        assert st.strategy == "model"

    def test_paper_strategy_rejects_unknown_config(self):
        with pytest.raises(KeyError):
            SplitThresholds.create(16384, 64, 10, strategy="paper")


class TestModelSchedule:
    def test_terminates_at_refresh_threshold(self):
        st = SplitThresholds.create(16384, 64, 11, strategy="model")
        assert st.values[-1] == 16384

    def test_penultimate_is_half_threshold(self):
        st = SplitThresholds.create(32768, 64, 11, strategy="model")
        assert st.values[-2] == 16384

    def test_strictly_increasing(self):
        for t in (8192, 16384, 32768, 65536):
            for m, l in ((32, 10), (64, 11), (128, 12), (256, 13)):
                st = SplitThresholds.create(t, m, l, strategy="model")
                assert all(b > a for a, b in zip(st.values, st.values[1:]))

    def test_first_ratio_is_two(self):
        st = SplitThresholds.create(32768, 64, 11, strategy="model")
        assert st.values[1] == pytest.approx(2 * st.values[0], rel=0.01)

    def test_model_close_to_paper_anchor(self):
        """The generalized model should land near the published values."""
        st = SplitThresholds.create(32768, 64, 10, strategy="model")
        for model_v, paper_v in zip(st.values, PAPER_THRESHOLDS[(32768, 64, 10)]):
            assert model_v == pytest.approx(paper_v, rel=0.12)

    def test_length_matches_level_span(self):
        st = SplitThresholds.create(32768, 64, 11, strategy="model")
        # levels m-1 .. L-1 with m = 6: 5..10 -> 6 values
        assert len(st.values) == 6


class TestGeometricSchedule:
    def test_doubling(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="geometric")
        for a, b in zip(st.values, st.values[1:]):
            assert b == 2 * a

    def test_terminates_at_threshold(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="geometric")
        assert st.values[-1] == 32768


class TestValidation:
    def test_rejects_non_power_of_two_counters(self):
        with pytest.raises(ValueError):
            SplitThresholds.create(32768, 48, 11)

    def test_rejects_too_shallow_tree(self):
        # L must exceed log2(M)
        with pytest.raises(ValueError):
            SplitThresholds.create(32768, 64, 6)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            SplitThresholds.create(32768, 64, 11, strategy="nonsense")

    def test_rejects_bad_presplit(self):
        with pytest.raises(ValueError):
            SplitThresholds.create(32768, 64, 11, presplit_levels=0)
        with pytest.raises(ValueError):
            SplitThresholds.create(32768, 64, 11, presplit_levels=7)


class TestThresholdForLevel:
    def test_max_level_returns_refresh_threshold(self):
        st = SplitThresholds.create(32768, 64, 11)
        assert st.threshold_for_level(10) == 32768
        assert st.threshold_for_level(12) == 32768

    def test_schedule_levels(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="paper")
        # presplit λ = 6 -> first scheduled level is 5
        assert st.threshold_for_level(5) == 5155
        assert st.threshold_for_level(6) == 10309
        assert st.threshold_for_level(9) == 32768

    def test_below_schedule_extends_by_halving(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="paper")
        assert st.threshold_for_level(4) == 5155 // 2
        assert st.threshold_for_level(3) == 5155 // 4


class TestScaled:
    def test_scaling_divides_values(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="paper")
        scaled = st.scaled(16.0)
        assert scaled.refresh_threshold == 2048
        for orig, new in zip(st.values, scaled.values):
            assert new == pytest.approx(orig / 16, abs=1.5)

    def test_scaling_preserves_monotonicity(self):
        st = SplitThresholds.create(32768, 64, 14, strategy="model")
        scaled = st.scaled(500.0)
        assert all(b > a for a, b in zip(scaled.values, scaled.values[1:]))

    def test_scaling_rejects_nonpositive(self):
        st = SplitThresholds.create(32768, 64, 11)
        with pytest.raises(ValueError):
            st.scaled(0)

    def test_identity_scale(self):
        st = SplitThresholds.create(32768, 64, 10, strategy="paper")
        assert st.scaled(1.0).values == st.values
