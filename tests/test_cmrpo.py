"""Tests for the CMRPO metric computation."""

import pytest

from repro.dram.config import REFRESH_INTERVAL_S, ROW_REFRESH_ENERGY_NJ
from repro.energy.cmrpo import (
    STATIC_AMORTIZATION_BANKS,
    CMRPOBreakdown,
    compute_cmrpo,
)
from repro.energy.hardware_model import pra_hardware, scheme_hardware


class TestBreakdown:
    def test_total_is_sum(self):
        b = CMRPOBreakdown(0.1, 0.2, 0.3)
        assert b.total_mw == pytest.approx(0.6)
        assert b.cmrpo == pytest.approx(0.24)

    def test_as_dict_keys(self):
        b = CMRPOBreakdown(0.1, 0.2, 0.3)
        assert set(b.as_dict()) == {
            "dynamic_mw",
            "static_mw",
            "refresh_mw",
            "total_mw",
            "cmrpo",
        }


class TestComputation:
    def test_refresh_component(self):
        b = compute_cmrpo("sca", 0.0, victim_rows_per_interval=16000.0)
        expected_mw = 16000 * ROW_REFRESH_ENERGY_NJ / REFRESH_INTERVAL_S * 1e-6
        assert b.refresh_mw == pytest.approx(expected_mw)
        assert b.dynamic_mw == 0.0

    def test_static_amortised_over_banks(self):
        b = compute_cmrpo("drcat", 0.0, 0.0, n_counters=64)
        hw = scheme_hardware("drcat", 64)
        expected = (
            hw.static_nj_per_interval
            / STATIC_AMORTIZATION_BANKS
            / REFRESH_INTERVAL_S
            * 1e-6
        )
        assert b.static_mw == pytest.approx(expected)

    def test_dynamic_scales_with_access_rate(self):
        lo = compute_cmrpo("sca", 100_000.0, 0.0)
        hi = compute_cmrpo("sca", 200_000.0, 0.0)
        assert hi.dynamic_mw == pytest.approx(2 * lo.dynamic_mw)

    def test_pra_requires_probability(self):
        with pytest.raises(ValueError):
            compute_cmrpo("pra", 1000.0, 10.0)

    def test_pra_dynamic_is_prng_energy(self):
        accesses = 582_000.0
        b = compute_cmrpo("pra", accesses, 0.0, pra_probability=0.002)
        expected = (
            pra_hardware().energy_per_access_nj
            * accesses
            / REFRESH_INTERVAL_S
            * 1e-6
        )
        assert b.dynamic_mw == pytest.approx(expected)
        assert b.static_mw == 0.0

    def test_paper_ballpark_pra_eleven_percent(self):
        """PRA at the paper-implied access rate lands near its reported
        11% CMRPO (dominated by PRNG energy)."""
        accesses = 582_000.0
        victim_rows = 2 * accesses * 0.002  # two rows every 1/p accesses
        b = compute_cmrpo("pra", accesses, victim_rows, pra_probability=0.002)
        assert 0.07 < b.cmrpo < 0.15

    def test_smaller_threshold_cheaper_static(self):
        b32 = compute_cmrpo("prcat", 0.0, 0.0, refresh_threshold=32768)
        b16 = compute_cmrpo("prcat", 0.0, 0.0, refresh_threshold=16384)
        assert b16.static_mw < b32.static_mw
