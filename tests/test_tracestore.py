"""Trace-store guarantees: bit-identity, keying, robustness, bypass.

The content-addressed activation-trace store
(:mod:`repro.sim.tracestore`) may never change a number: a stored
stream is served back byte-exact, the arrival RNG is left exactly where
generation would have left it, and any doubt about an entry (corrupt,
truncated, colliding, unwritable) silently falls back to generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import scheme_names
from repro.experiments import ExperimentSpec, SchemeSpec
from repro.sim import tracestore
from repro.sim.engine import ENGINES
from repro.sim.simulator import TraceDrivenSimulator
from repro.sim.tracestore import stream_key, stream_key_doc


def _spec(scheme="drcat", engine="batched", **overrides) -> ExperimentSpec:
    fields = dict(
        scheme=SchemeSpec(scheme) if isinstance(scheme, str) else scheme,
        workload="black",
        scale=96.0,
        n_banks=2,
        n_intervals=2,
        engine=engine,
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def _run(spec: ExperimentSpec) -> dict:
    return TraceDrivenSimulator(spec).run().to_dict()


@pytest.fixture()
def store_root(tmp_path, monkeypatch):
    """A fresh store location, isolated from the repo's default dir."""
    root = tmp_path / "traces"
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(root))
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    # Singletons are keyed by root, so a fresh tmp root is enough; drop
    # them anyway so each test starts with cold in-process caches.
    tracestore._STORES.clear()
    yield root
    tracestore._STORES.clear()


def _reference(spec, monkeypatch) -> dict:
    """The store-off result (PR-4 behaviour)."""
    monkeypatch.setenv("REPRO_TRACE_STORE", "0")
    try:
        return _run(spec)
    finally:
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("scheme", sorted(scheme_names()))
def test_cached_and_regenerated_streams_bit_identical(
    scheme, engine, store_root, monkeypatch
):
    """Store-off, store-cold and store-warm runs agree exactly.

    Registry-parametrized: a newly registered scheme is covered
    automatically, on both engines.
    """
    spec = _spec(scheme, engine)
    reference = _reference(spec, monkeypatch)
    cold = _run(spec)   # populates the store
    warm = _run(spec)   # serves every interval from it
    assert cold == reference
    assert warm == reference
    store = tracestore.open_store()
    assert store is not None
    assert store.stats()["entries"] == spec.n_intervals
    assert store.hits >= spec.n_intervals


def test_hits_are_zero_copy_memmap_views(store_root):
    spec = _spec("sca")
    _run(spec)
    # A fresh store (new process's view): entries come back as
    # read-only views of the on-disk memmaps, not heap copies.
    tracestore._STORES.clear()
    store = tracestore.open_store()
    doc = stream_key_doc(TraceDrivenSimulator(spec))
    per_bank, rng_state = store.get(stream_key(doc), doc, 0, spec.n_banks)
    for times, rows in per_bank:
        assert isinstance(times.base, np.memmap)
        assert isinstance(rows.base, np.memmap)
        assert not times.flags.writeable
    assert rng_state["bit_generator"] == "PCG64"


def test_longer_run_extends_a_shorter_runs_entries(store_root, monkeypatch):
    """n_intervals is excluded from the key: a 4-interval run hits the
    2-interval run's entries for intervals 0-1 and generates 2-3 from
    the restored RNG chain — bit-identical to generating everything."""
    short = _spec("sca", n_intervals=2)
    long = _spec("sca", n_intervals=4)
    reference = _reference(long, monkeypatch)
    _run(short)
    store = tracestore.open_store()
    assert store.stats()["entries"] == 2
    assert _run(long) == reference
    assert store.stats()["entries"] == 4


def test_scheme_threshold_and_engine_share_one_key(store_root):
    base = TraceDrivenSimulator(_spec("drcat"))
    key = stream_key(stream_key_doc(base))
    for other in (
        _spec("pra"),
        _spec(SchemeSpec.create("sca", n_counters=128)),
        _spec("drcat", refresh_threshold=16384),
        _spec("drcat", engine="scalar"),
    ):
        doc = stream_key_doc(TraceDrivenSimulator(other))
        assert stream_key(doc) == key


def test_stream_relevant_fields_change_the_key(store_root):
    base = TraceDrivenSimulator(_spec("drcat"))
    key = stream_key(stream_key_doc(base))
    for other in (
        _spec("drcat", seed=123),
        _spec("drcat", scale=24.0),
        _spec("drcat", n_banks=1),
        _spec("drcat", workload="libq"),
        _spec("drcat", intensity_scale=2.0),
        _spec("drcat", kind="attack", attack_kernel="kernel01",
              attack_mode="heavy"),
    ):
        doc = stream_key_doc(TraceDrivenSimulator(other))
        assert stream_key(doc) != key


def test_key_miss_actually_regenerates(store_root):
    _run(_spec("sca"))
    store = tracestore.open_store()
    assert store.stats()["entries"] == 2
    _run(_spec("sca", seed=123))
    # Distinct seed populated distinct entries instead of hitting.
    assert store.stats()["entries"] == 4


@pytest.mark.parametrize("corruption", ["truncate_times", "unlink_rows",
                                        "garbage_meta"])
def test_corrupt_entries_regenerate_never_crash(
    corruption, store_root, monkeypatch
):
    spec = _spec("drcat")
    reference = _reference(spec, monkeypatch)
    assert _run(spec) == reference
    store = tracestore.open_store()
    doc = stream_key_doc(TraceDrivenSimulator(spec))
    key = stream_key(doc)
    target = {
        "truncate_times": store._times_path(key, 0),
        "unlink_rows": store._rows_path(key, 0),
        "garbage_meta": store._meta_path(key, 0),
    }[corruption]
    if corruption == "truncate_times":
        target.write_bytes(target.read_bytes()[:40])
    elif corruption == "unlink_rows":
        target.unlink()
    else:
        target.write_text("{not json", encoding="utf-8")
    # Fresh process-level view: the in-RAM entry cache must not mask
    # the on-disk corruption for this check.
    tracestore._STORES.clear()
    assert _run(spec) == reference
    # The corrupt entry was dropped and rewritten; a further run hits.
    tracestore._STORES.clear()
    assert _run(spec) == reference


@pytest.mark.parametrize("mutation", ["nonmonotonic_offsets", "bogus_rng"])
def test_consistent_looking_corruption_regenerates(
    mutation, store_root, monkeypatch
):
    """Total-preserving offset shuffles and malformed RNG states must
    degrade to regeneration — never silent wrong numbers, never a
    crash."""
    import json

    spec = _spec("sca")
    reference = _reference(spec, monkeypatch)
    _run(spec)
    store = tracestore.open_store()
    doc = stream_key_doc(TraceDrivenSimulator(spec))
    key = stream_key(doc)
    meta_path = store._meta_path(key, 0)
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if mutation == "nonmonotonic_offsets":
        total = meta["offsets"][-1]
        meta["offsets"] = [0, total + 5, total]
    else:
        meta["rng_after"] = {"bogus": 1}
    meta_path.write_text(json.dumps(meta), encoding="utf-8")
    tracestore._STORES.clear()
    assert _run(spec) == reference


def test_hash_collision_detected_by_key_doc(store_root):
    spec = _spec("sca")
    _run(spec)
    store = tracestore.open_store()
    doc = stream_key_doc(TraceDrivenSimulator(spec))
    other = dict(doc, seed=999)  # same requested key, different identity
    assert store.get(stream_key(doc), other, 0, spec.n_banks) is None


def test_store_off_env_bypasses_cleanly(store_root, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_STORE", "0")
    assert tracestore.open_store() is None
    spec = _spec("sca")
    result = _run(spec)
    assert not store_root.exists()
    monkeypatch.setenv("REPRO_TRACE_STORE", "1")
    assert _run(spec) == result


def test_unwritable_root_degrades_to_generation(tmp_path, monkeypatch):
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory", encoding="utf-8")
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(blocker / "traces"))
    tracestore._STORES.clear()
    spec = _spec("sca")
    result = _run(spec)
    monkeypatch.setenv("REPRO_TRACE_STORE", "0")
    assert _run(spec) == result


def test_checkpoint_resume_with_store_matches_uninterrupted(
    store_root, monkeypatch
):
    """Snapshot/restore across a store-warm boundary stays bit-exact:
    the restored session serves remaining intervals from the store with
    the RNG chain intact."""
    import json

    from repro.api import Session

    spec = _spec("drcat", n_intervals=2)
    reference = _reference(spec, monkeypatch)
    _run(spec)  # warm the store
    session = Session(spec)
    session.advance(session.total_ns / 2.0)
    restored = Session.restore(json.loads(json.dumps(session.snapshot())))
    assert restored.result().to_dict() == reference


def test_clear_and_stats_roundtrip(store_root):
    _run(_spec("sca"))
    store = tracestore.open_store()
    stats = store.stats()
    assert stats["entries"] == 2 and stats["bytes"] > 0
    assert store.clear() == 2
    assert store.stats()["entries"] == 0
