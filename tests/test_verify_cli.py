"""``repro verify`` exit codes and diff rendering.

Uses the two cheap analytic bench modules (Table I / Table II) against
a temporary golden store so each verify run costs milliseconds.
"""

import json

import pytest

from repro.cli import main
from repro.report.verify import EXIT_DIFF, EXIT_OK, EXIT_USAGE

FIGS = ["--figures", "bench_table1_config", "bench_table2_hardware"]


def run_update(tmp_path):
    return main([
        "verify", "--fidelity", "smoke", "--update",
        "--golden-dir", str(tmp_path), *FIGS,
    ])


class TestVerifyExitCodes:
    def test_update_then_verify_passes(self, tmp_path, capsys):
        assert run_update(tmp_path) == EXIT_OK
        assert (tmp_path / "smoke" / "table1_config.json").is_file()
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_OK
        out = capsys.readouterr().out
        assert "PASS table1_config" in out
        assert "verify ok: 3 artifact(s)" in out

    def test_missing_golden_fails(self, tmp_path, capsys):
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_DIFF
        assert "no golden" in capsys.readouterr().out

    def test_perturbed_metric_fails_with_readable_diff(self, tmp_path,
                                                       capsys):
        assert run_update(tmp_path) == EXIT_OK
        golden_path = tmp_path / "smoke" / "table1_config.json"
        doc = json.loads(golden_path.read_text(encoding="utf-8"))
        doc["rows"][0]["cores"] += 1
        golden_path.write_text(json.dumps(doc), encoding="utf-8")
        capsys.readouterr()
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_DIFF
        out = capsys.readouterr().out
        assert "FAIL table1_config" in out
        assert "col cores" in out
        assert "PASS table2_hardware" in out
        assert "verify FAILED: 1 of 3" in out

    def test_corrupt_golden_fails(self, tmp_path, capsys):
        assert run_update(tmp_path) == EXIT_OK
        (tmp_path / "smoke" / "table2_prng.json").write_text(
            "{}", encoding="utf-8"
        )
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_DIFF
        assert "unreadable golden" in capsys.readouterr().out

    def test_fidelity_mismatch_fails_on_parameters(self, tmp_path, capsys):
        assert run_update(tmp_path) == EXIT_OK
        # stage the smoke goldens as ci goldens: scale differs -> FAIL
        ci_dir = tmp_path / "ci"
        ci_dir.mkdir()
        for path in (tmp_path / "smoke").glob("*.json"):
            ci_dir.joinpath(path.name).write_bytes(path.read_bytes())
        capsys.readouterr()
        assert main([
            "verify", "--fidelity", "ci",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_DIFF
        assert "fidelity mismatch" in capsys.readouterr().out

    def test_unknown_figure_is_usage_error(self, tmp_path, capsys):
        assert main([
            "verify", "--golden-dir", str(tmp_path),
            "--figures", "bench_nonexistent",
        ]) == EXIT_USAGE
        assert "unknown figure" in capsys.readouterr().out

    def test_list_only(self, capsys):
        assert main(["verify", "--list"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "bench_fig8_cmrpo" in out and "bench_perf" not in out

    def test_session_checkpoint_path_passes_same_goldens(self, tmp_path,
                                                         capsys):
        """The checkpoint/resume execution path must match goldens
        written by the direct path — the session-equivalence gate."""
        figs = ["--figures", "bench_counter_cache"]
        assert main([
            "verify", "--fidelity", "smoke", "--update",
            "--golden-dir", str(tmp_path), *figs,
        ]) == EXIT_OK
        for session in ("session", "checkpoint"):
            capsys.readouterr()
            assert main([
                "verify", "--fidelity", "smoke", "--session", session,
                "--golden-dir", str(tmp_path), *figs,
            ]) == EXIT_OK
            out = capsys.readouterr().out
            assert f"session={session}" in out
            assert "verify ok" in out

    def test_missing_benchmarks_dir_is_usage_error(self, tmp_path, capsys):
        assert main([
            "verify", "--golden-dir", str(tmp_path),
            "--benchmarks-dir", str(tmp_path / "nowhere"), *FIGS,
        ]) == EXIT_USAGE
        assert "benchmarks" in capsys.readouterr().out


class TestOrphanedGoldens:
    def test_orphan_golden_fails_full_run(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.report import verify as verify_mod
        # Shrink the registry to the two cheap modules for this test.
        monkeypatch.setattr(
            verify_mod, "BENCH_MODULES",
            ("bench_table1_config", "bench_table2_hardware"),
        )
        assert main([
            "verify", "--fidelity", "smoke", "--update",
            "--golden-dir", str(tmp_path),
        ]) == EXIT_OK
        orphan = tmp_path / "smoke" / "fig99_removed.json"
        orphan.write_text("{}", encoding="utf-8")
        capsys.readouterr()
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path),
        ]) == EXIT_DIFF
        assert "orphaned golden" in capsys.readouterr().out
        # --update on a full run prunes it again
        assert main([
            "verify", "--fidelity", "smoke", "--update",
            "--golden-dir", str(tmp_path),
        ]) == EXIT_OK
        assert "pruned" in capsys.readouterr().out
        assert not orphan.exists()

    def test_subset_run_ignores_other_goldens(self, tmp_path, capsys):
        assert run_update(tmp_path) == EXIT_OK
        (tmp_path / "smoke" / "unrelated.json").write_text(
            "{}", encoding="utf-8"
        )
        capsys.readouterr()
        assert main([
            "verify", "--fidelity", "smoke",
            "--golden-dir", str(tmp_path), *FIGS,
        ]) == EXIT_OK


class TestVerifyEnvHygiene:
    def test_ambient_engine_env_does_not_leak(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ENGINE", "scalar")
        run_update(tmp_path)
        doc = json.loads(
            (tmp_path / "smoke" / "table1_config.json").read_text(
                encoding="utf-8"
            )
        )
        assert doc["engine"] == "batched"

    def test_env_is_restored_after_run(self, tmp_path, monkeypatch):
        import os
        monkeypatch.setenv("REPRO_BENCH_SCALE", "48")
        monkeypatch.delenv("REPRO_BENCH_FIDELITY", raising=False)
        run_update(tmp_path)
        assert os.environ["REPRO_BENCH_SCALE"] == "48"
        assert "REPRO_BENCH_FIDELITY" not in os.environ

    def test_update_records_fidelity_and_engine(self, tmp_path):
        run_update(tmp_path)
        doc = json.loads(
            (tmp_path / "smoke" / "table1_config.json").read_text(
                encoding="utf-8"
            )
        )
        assert doc["parameters"]["fidelity"] == "smoke"
        assert doc["scale"] == 96.0
        assert doc["engine"] == "batched"


@pytest.mark.parametrize("flag", [[], ["--engine", "scalar"]])
def test_verify_engine_flag_accepted(tmp_path, flag):
    # Analytic tables do not exercise the engines, but the flag must
    # round-trip through the CLI and env plumbing for both values.
    assert run_update(tmp_path) == EXIT_OK
    assert main([
        "verify", "--fidelity", "smoke",
        "--golden-dir", str(tmp_path), *FIGS, *flag,
    ]) == EXIT_OK
