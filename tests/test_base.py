"""Tests for the scheme interfaces: RefreshCommand, stats, ledger."""

import pytest

from repro.core.base import ActivationLedger, RefreshCommand, SchemeStats
from repro.core.sca import SCAScheme


class TestRefreshCommand:
    def test_row_count_plain(self):
        cmd = RefreshCommand(10, 19)
        assert cmd.span == 10
        assert cmd.row_count(1024) == 10

    def test_clamps_low_edge(self):
        cmd = RefreshCommand(-1, 5)
        clamped = cmd.clamped(1024)
        assert clamped.low == 0
        assert cmd.row_count(1024) == 6

    def test_clamps_high_edge(self):
        cmd = RefreshCommand(1020, 1024)
        assert cmd.clamped(1024).high == 1023
        assert cmd.row_count(1024) == 4

    def test_clamp_preserves_reason(self):
        cmd = RefreshCommand(-1, 2, reason="probabilistic")
        assert cmd.clamped(16).reason == "probabilistic"

    def test_empty_after_clamp(self):
        cmd = RefreshCommand(-3, -1)
        assert cmd.row_count(1024) == 0

    def test_frozen(self):
        cmd = RefreshCommand(0, 1)
        with pytest.raises(AttributeError):
            cmd.low = 5


class TestSchemeStats:
    def test_snapshot_roundtrip(self):
        stats = SchemeStats(activations=3, rows_refreshed=7)
        snap = stats.snapshot()
        assert snap["activations"] == 3
        assert snap["rows_refreshed"] == 7
        assert set(snap) == {
            "activations",
            "refresh_commands",
            "rows_refreshed",
            "splits",
            "merges",
            "resets",
        }


class TestSchemeValidation:
    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            SCAScheme(0, 100, 1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            SCAScheme(1024, 0, 8)

    def test_rejects_out_of_range_row(self):
        scheme = SCAScheme(1024, 100, 8)
        with pytest.raises(ValueError):
            scheme.access(1024)
        with pytest.raises(ValueError):
            scheme.access(-1)

    def test_describe_mentions_config(self):
        scheme = SCAScheme(1024, 100, 8)
        text = scheme.describe()
        assert "1024" in text and "100" in text


class TestActivationLedger:
    def test_pressure_accumulates(self):
        ledger = ActivationLedger(64)
        for _ in range(5):
            ledger.activate(10)
        assert ledger.max_pressure() == 5

    def test_refresh_clears_covered_rows(self):
        ledger = ActivationLedger(64)
        for _ in range(5):
            ledger.activate(10)
        ledger.refresh_range(8, 12)
        assert ledger.max_pressure() == 0

    def test_refresh_does_not_clear_boundary_aggressor(self):
        """A row at the edge of the refreshed range keeps its pressure:
        its out-of-range neighbour was not refreshed."""
        ledger = ActivationLedger(64)
        for _ in range(5):
            ledger.activate(12)
        ledger.refresh_range(8, 12)  # row 13 not refreshed
        assert ledger.counts.get(12, 0) == 5

    def test_bank_edge_rows_clear_without_outer_neighbour(self):
        ledger = ActivationLedger(64)
        ledger.activate(0)
        ledger.refresh_range(0, 1)
        assert ledger.max_pressure() == 0
        ledger.activate(63)
        ledger.refresh_range(62, 63)
        assert ledger.max_pressure() == 0

    def test_unrelated_refresh_leaves_pressure(self):
        ledger = ActivationLedger(64)
        ledger.activate(40)
        ledger.refresh_range(0, 10)
        assert ledger.counts[40] == 1
