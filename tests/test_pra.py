"""Tests for Probabilistic Row Activation (PRA)."""

import pytest

from repro.analysis.prng import CountingPRNG, TrueRandomPRNG
from repro.core.pra import PRAScheme


class TestProbability:
    def test_rejects_probability_out_of_range(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                PRAScheme(1024, 32768, p)

    def test_effective_probability_quantisation(self):
        scheme = PRAScheme(1024, 32768, 0.002, random_bits=9)
        assert scheme.effective_probability == pytest.approx(1 / 512)

    def test_effective_probability_never_zero(self):
        scheme = PRAScheme(1024, 32768, 0.0001, random_bits=9)
        assert scheme.effective_probability > 0

    def test_empirical_rate_matches(self):
        scheme = PRAScheme(1024, 32768, 0.01, prng=TrueRandomPRNG(seed=1))
        triggered = sum(1 for _ in range(50000) if scheme.access(500))
        expected = scheme.effective_probability * 50000
        assert triggered == pytest.approx(expected, rel=0.25)


class TestRefreshTargets:
    def _always_fire(self):
        # CountingPRNG starting at 0 draws 0 on its first call -> below cut
        return PRAScheme(1024, 32768, 0.002, prng=CountingPRNG(0))

    def test_refreshes_both_neighbours(self):
        cmds = self._always_fire().access(500)
        ranges = {(c.low, c.high) for c in cmds}
        assert ranges == {(499, 499), (501, 501)}

    def test_never_refreshes_aggressor(self):
        cmds = self._always_fire().access(500)
        assert all(not (c.low <= 500 <= c.high) for c in cmds)

    def test_bottom_edge_single_neighbour(self):
        cmds = self._always_fire().access(0)
        assert {(c.low, c.high) for c in cmds} == {(1, 1)}

    def test_top_edge_single_neighbour(self):
        cmds = self._always_fire().access(1023)
        assert {(c.low, c.high) for c in cmds} == {(1022, 1022)}

    def test_reason_tag(self):
        cmds = self._always_fire().access(10)
        assert all(c.reason == "probabilistic" for c in cmds)


class TestStats:
    def test_stats_count_rows(self):
        scheme = PRAScheme(1024, 32768, 0.002, prng=CountingPRNG(0))
        scheme.access(500)   # fires (draw 0)
        assert scheme.stats.rows_refreshed == 2
        assert scheme.stats.refresh_commands == 2
        assert scheme.stats.activations == 1

    def test_counters_in_use_is_zero(self):
        assert PRAScheme(1024, 32768, 0.002).counters_in_use == 0

    def test_describe_mentions_prng(self):
        scheme = PRAScheme(1024, 32768, 0.002)
        assert "trng" in scheme.describe()
