"""Batched-vs-scalar engine equivalence suite.

The batched engine's contract is *bit-identical* results: for every
scheme, workload, and attack mix, a batched run must produce exactly the
same :class:`~repro.sim.metrics.RunTotals` (refresh commands, rows
refreshed, stall and busy nanoseconds), the same merged scheme
statistics (splits, merges, resets, activations), and the same SRAM
read counts as the per-event scalar loop.  Anything short of exact
equality is an engine bug, not noise — see DESIGN.md, "Batched engine".
"""

import numpy as np
import pytest

from repro.analysis.prng import CountingPRNG, TrueRandomPRNG
from repro.dram.config import DUAL_CORE_2CH
from repro.experiments import ExperimentSpec, SchemeSpec
from repro.sim.runner import simulate_attack, simulate_workload
from repro.sim.simulator import TraceDrivenSimulator
from repro.workloads.suites import get_workload

SCHEMES = ("pra", "sca", "prcat", "drcat", "ccache")
#: Skew spectrum: extreme (black), moderate (mum), near-uniform (libq).
WORKLOADS = ("black", "mum", "libq")
#: Multi-interval, multi-bank, and a scale whose threshold still splits.
KNOBS = dict(scale=64.0, n_banks=2, n_intervals=3)


def _run(engine: str, scheme: str, workload: str):
    sim = TraceDrivenSimulator(ExperimentSpec(
        scheme=SchemeSpec(scheme),
        system=DUAL_CORE_2CH,
        engine=engine,
        **KNOBS,
    ))
    result = sim.run(get_workload(workload))
    return result, sim._last_memory


def _fingerprint(memory) -> dict:
    """Every engine-observable total, including tree internals."""
    out = dict(memory.scheme_stats())
    out["total_refresh_commands"] = memory.total_refresh_commands
    out["total_rows_refreshed"] = memory.total_rows_refreshed
    out["total_stall_ns"] = memory.total_stall_ns
    out["total_mitigation_busy_ns"] = memory.total_mitigation_busy_ns
    out["total_activations"] = memory.total_activations
    out["last_completion_ns"] = memory.last_completion_ns
    for bank, state in enumerate(memory.banks):
        out[f"bank{bank}_free_at"] = state.free_at_ns
        out[f"bank{bank}_backlog"] = state.refresh_backlog_rows
        out[f"bank{bank}_escalations"] = state.escalations
    for bank, scheme in enumerate(memory.schemes):
        tree = getattr(scheme, "tree", None)
        if tree is not None:
            out[f"bank{bank}_sram_reads"] = tree.total_sram_reads
            out[f"bank{bank}_partition"] = tuple(tree.partition())
            out[f"bank{bank}_counts"] = tuple(tree._count)
            out[f"bank{bank}_weights"] = tuple(tree._weight)
    return out


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_bit_identical_workload_runs(scheme, workload):
    scalar, scalar_mem = _run("scalar", scheme, workload)
    batched, batched_mem = _run("batched", scheme, workload)
    assert scalar.totals == batched.totals
    assert _fingerprint(scalar_mem) == _fingerprint(batched_mem)
    assert scalar.cmrpo == batched.cmrpo
    assert scalar.eto == batched.eto


@pytest.mark.parametrize("scheme", SCHEMES)
def test_bit_identical_attack_runs(scheme):
    results = {}
    for engine in ("scalar", "batched"):
        results[engine] = simulate_attack(
            "kernel01",
            "heavy",
            scheme,
            benign="libq",
            scale=64.0,
            n_banks=2,
            n_intervals=2,
            engine=engine,
        )
    assert results["scalar"].totals == results["batched"].totals


def test_epoch_boundary_state_identical():
    """PRCAT's epoch reset happens at the same point in both engines."""
    for engine in ("scalar", "batched"):
        _, memory = _run(engine, "prcat", "mum")
        resets = memory.scheme_stats()["resets"]
        # 3 intervals -> 2 interior boundaries per active bank.
        assert resets == 2 * KNOBS["n_banks"]


def test_trng_batch_draws_match_scalar_draws():
    """The PCG64 bulk draw is stream-equivalent to sequential draws."""
    a, b = TrueRandomPRNG(seed=99), TrueRandomPRNG(seed=99)
    batch = a.next_bits_batch(9, 257)
    scalars = [b.next_bits(9) for _ in range(257)]
    assert batch.tolist() == scalars


def test_default_prng_batch_fallback_matches():
    """The PRNG base-class batch fallback replays scalar draws."""
    a, b = CountingPRNG(3), CountingPRNG(3)
    batch = a.next_bits_batch(4, 40)
    scalars = [b.next_bits(4) for _ in range(40)]
    assert batch.tolist() == scalars


def test_engine_flag_validation():
    with pytest.raises(ValueError):
        ExperimentSpec(scheme=SchemeSpec("sca"), engine="warp")


def test_runner_plumbs_engine():
    r1 = simulate_workload("mum", "drcat", engine="scalar", scale=128.0,
                           n_banks=1, n_intervals=1)
    r2 = simulate_workload("mum", "drcat", engine="batched", scale=128.0,
                           n_banks=1, n_intervals=1)
    assert r1.totals == r2.totals


def test_memory_system_merged_batch_api():
    """`MemorySystem.access_batch` equals the per-event access loop."""
    from repro.core import make_scheme
    from repro.dram.config import SystemConfig
    from repro.dram.memory_system import MemorySystem
    from repro.sim.engine import quantize_times_ns

    config = SystemConfig(rows_per_bank=4096)
    rng = np.random.default_rng(11)
    n = 4000
    times = quantize_times_ns(np.sort(rng.uniform(0, 5e6, size=n)))
    banks = rng.integers(0, 4, size=n)
    rows = rng.integers(0, 4096, size=n)

    def build():
        return MemorySystem(
            config,
            lambda n_rows: make_scheme("drcat", n_rows, 256),
            epoch_s=1e-3,
        )

    scalar = build()
    for t, b, r in zip(times.tolist(), banks.tolist(), rows.tolist()):
        scalar.access(t, b, r)
    batched = build()
    batched.access_batch(times, banks, rows)
    assert _fingerprint(scalar) == _fingerprint(batched)


def test_batched_access_batch_rejects_bad_rows():
    """The vectorized row check still rejects out-of-range rows."""
    from repro.core import make_scheme

    for kind in ("sca", "pra", "drcat"):
        scheme = make_scheme(kind, 1024, 128)
        with pytest.raises(ValueError):
            scheme.access_batch(np.array([5, 2048], dtype=np.int64))
