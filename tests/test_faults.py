"""Tests for the deterministic fault-injection harness.

Unit coverage of :mod:`repro.testing.faults` itself, then the
acceptance matrix: for every injection site and applicable fault kind,
a small sweep with the harness armed must converge — within the retry
budget — to results bit-identical to the uninjected baseline.
"""

import json

import pytest

from repro.errors import InjectedFault
from repro.experiments import ExperimentSpec, Plan, SchemeSpec, run_plan
from repro.experiments.run import SweepPool, SweepReport
from repro.testing.faults import (
    ENV_VAR,
    FAULT_KINDS,
    FAULT_SITES,
    ROUND_VAR,
    FaultConfigError,
    FaultSpec,
    corrupting,
    fault_point,
    faults_armed,
    faults_summary,
    parse_faults,
    reset_faults,
)

FAST = dict(scale=128.0, n_banks=1, n_intervals=1)


def fast_spec(**overrides):
    fields = dict(scheme=SchemeSpec("drcat"), workload="libq", **FAST)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def small_plan():
    return Plan.grid(
        fast_spec(),
        workload=["libq", "black"],
        scheme=[SchemeSpec("sca"), SchemeSpec("drcat")],
    )


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """Disarm and forget fired-fault state around every test."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    monkeypatch.delenv(ROUND_VAR, raising=False)
    reset_faults()
    yield
    reset_faults()


class TestParsing:
    def test_empty_is_disarmed(self):
        assert parse_faults("") == ()
        assert parse_faults(" , ,") == ()

    def test_site_kind_seed(self):
        (spec,) = parse_faults("tracestore.read:raise:7")
        assert spec.key == ("tracestore.read", "raise", 7)

    def test_seed_defaults_to_zero(self):
        (spec,) = parse_faults("cache.put:corrupt")
        assert spec.seed == 0

    def test_multiple_faults(self):
        specs = parse_faults(
            "pool.worker:kill-worker, session.advance:delay:2"
        )
        assert [s.site for s in specs] == ["pool.worker", "session.advance"]

    @pytest.mark.parametrize("raw", [
        "nowhere:raise",           # unknown site
        "cache.put:explode",       # unknown kind
        "cache.put",               # missing kind
        "cache.put:raise:x",       # non-integer seed
        "cache.put:raise:1:2",     # too many fields
    ])
    def test_malformed_values_rejected(self, raw):
        with pytest.raises(FaultConfigError):
            parse_faults(raw)

    def test_registry_is_closed(self):
        for site in FAULT_SITES:
            for kind in FAULT_KINDS:
                FaultSpec(site, kind)  # must not raise


class TestHarness:
    def test_disarmed_is_a_noop(self):
        fault_point("session.advance")
        assert corrupting("cache.put", "payload") == "payload"
        assert not faults_armed()
        assert faults_summary() == "off"

    def test_raise_fires_exactly_once(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "session.advance:raise:1")
        reset_faults()
        assert faults_armed()
        assert faults_summary() == "session.advance:raise:1"
        with pytest.raises(InjectedFault, match="session.advance"):
            fault_point("session.advance")
        fault_point("session.advance")  # one-shot: second call is clean

    def test_site_mismatch_never_fires(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tracestore.write:raise")
        reset_faults()
        fault_point("tracestore.read")
        fault_point("session.advance")
        with pytest.raises(InjectedFault):
            fault_point("tracestore.write")

    def test_recovery_rounds_hold_fire(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "session.advance:raise")
        reset_faults()
        monkeypatch.setenv(ROUND_VAR, "1")
        fault_point("session.advance")  # armed, but past round zero
        monkeypatch.setenv(ROUND_VAR, "0")
        with pytest.raises(InjectedFault):
            fault_point("session.advance")

    def test_rearming_resets_fired_state(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "session.advance:raise:1")
        reset_faults()
        with pytest.raises(InjectedFault):
            fault_point("session.advance")
        monkeypatch.setenv(ENV_VAR, "session.advance:raise:2")
        with pytest.raises(InjectedFault):
            fault_point("session.advance")

    def test_corruption_is_deterministic_and_invalid_json(
        self, monkeypatch
    ):
        payload = json.dumps({"key": "value", "n": list(range(40))})
        monkeypatch.setenv(ENV_VAR, "cache.put:corrupt:9")
        reset_faults()
        first = corrupting("cache.put", payload)
        reset_faults()
        second = corrupting("cache.put", payload)
        assert first == second  # seeded, byte-reproducible
        assert first != payload
        with pytest.raises(json.JSONDecodeError):
            json.loads(first)

    def test_corruption_handles_bytes(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "tracestore.write:corrupt:3")
        reset_faults()
        mangled = corrupting("tracestore.write", b"\x93NUMPY" + b"x" * 64)
        assert isinstance(mangled, bytes)
        assert mangled != b"\x93NUMPY" + b"x" * 64

    def test_delay_returns(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "session.advance:delay:4")
        reset_faults()
        fault_point("session.advance")  # sleeps briefly, must not raise


@pytest.fixture(scope="module")
def baseline():
    """Uninjected reference results for the 4-cell matrix plan."""
    return [r.to_dict() for r in run_plan(small_plan())]


def _assert_converged(report, baseline):
    assert isinstance(report, SweepReport)
    assert report.ok, report.failure_rows()
    assert [c.status for c in report.cells] == ["ok"] * 4
    assert [r.to_dict() for r in report.results] == baseline


class TestInjectionMatrixSerial:
    """Every serial site x kind: armed sweeps match the disarmed run."""

    @pytest.mark.parametrize("fault", [
        "session.advance:raise:11",
        "session.advance:delay:12",
        "tracestore.read:raise:13",
        "tracestore.read:corrupt:14",
        "tracestore.read:delay:15",
        "tracestore.write:raise:16",
        "tracestore.write:corrupt:17",
        "tracestore.write:delay:18",
    ])
    def test_store_and_session_faults(
        self, fault, baseline, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "tr"))
        monkeypatch.setenv(ENV_VAR, fault)
        reset_faults()
        report = run_plan(small_plan(), keep_going=True, max_retries=2)
        _assert_converged(report, baseline)

    @pytest.mark.parametrize("fault", [
        "cache.put:raise:21",
        "cache.put:corrupt:22",
        "cache.put:delay:23",
    ])
    def test_cache_faults(self, fault, baseline, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_VAR, fault)
        reset_faults()
        report = run_plan(
            small_plan(), cache=tmp_path / "cache",
            keep_going=True, max_retries=2,
        )
        _assert_converged(report, baseline)

    def test_injected_raise_consumes_retry_budget(
        self, baseline, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "session.advance:raise:31")
        reset_faults()
        report = run_plan(small_plan(), keep_going=True, max_retries=2)
        _assert_converged(report, baseline)
        # Exactly one cell needed a second attempt.
        assert report.total_attempts() == 5
        (retried,) = [c for c in report.cells if c.attempts == 2]
        assert retried.failures[0].error_type == "InjectedFault"


class TestInjectionMatrixPooled:
    """pool.worker faults, including the worker-kill / broken-pool path."""

    @pytest.mark.parametrize("fault", [
        "pool.worker:raise:41",
        "pool.worker:delay:42",
        "pool.worker:kill-worker:43",
    ])
    def test_pooled_faults(self, fault, baseline, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "tr"))
        monkeypatch.setenv(ENV_VAR, fault)
        reset_faults()
        # Fresh workers: a reused pool may have already burned this
        # fault's one-shot state in a previous test.
        SweepPool.shutdown()
        try:
            report = run_plan(
                small_plan(), workers=2, keep_going=True, max_retries=2,
            )
        finally:
            SweepPool.shutdown()
        _assert_converged(report, baseline)
