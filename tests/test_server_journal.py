"""The durable job journal: framing, torn tails, idempotent replay.

The journal's one job is to survive arbitrary process death: every
accepted submission and state transition is a CRC-framed, fsync'd
record, and replay must (a) be idempotent — replaying twice, or
replaying a journal concatenated with itself, yields the identical job
table — and (b) degrade to the last good frame when the tail is torn,
truncated, or corrupted, never to an error or a wrong table.
"""

import struct

import pytest

from repro.server.journal import (
    Journal,
    JournaledJob,
    replay_records,
)
from repro.testing.faults import reset_faults


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_ROUND", raising=False)
    reset_faults()
    yield
    reset_faults()


def make_journal(tmp_path, **kwargs):
    return Journal(tmp_path / "journal", **kwargs)


def submit(journal, job_id, kind="run", n=1):
    return journal.record_submit(job_id, kind, "ab" * 32, n,
                                 {"spec": {"seed": 1}})


class TestFraming:
    def test_records_round_trip(self, tmp_path):
        journal = make_journal(tmp_path)
        assert submit(journal, "j00001-abababab")
        assert journal.record_state("j00001-abababab", "running")
        journal.close()
        records = journal.records()
        assert [r["rec"] for r in records] == ["submit", "state"]
        assert records[0]["doc"] == {"spec": {"seed": 1}}
        assert records[1]["status"] == "running"

    def test_appends_survive_reopen(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.close()
        # A fresh instance (the restarted process) appends to the same
        # segment and sees the whole history.
        reopened = make_journal(tmp_path)
        reopened.record_state("j00001-abababab", "done")
        reopened.close()
        assert [r["rec"] for r in reopened.records()] == ["submit", "state"]

    def test_segments_rotate_at_size_bound(self, tmp_path):
        journal = make_journal(tmp_path, max_segment_bytes=256)
        for i in range(8):
            submit(journal, f"j{i + 1:05d}-abababab")
        journal.close()
        assert len(journal.segments()) > 1
        assert len(journal.records()) == 8

    def test_torn_tail_degrades_to_last_good_frame(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.record_state("j00001-abababab", "running")
        journal.close()
        segment = journal.segments()[0]
        # Simulate a crash mid-append: half a frame of garbage at EOF.
        with open(segment, "ab") as handle:
            handle.write(struct.pack("<II", 4096, 0) + b"\xde\xad")
        assert [r["rec"] for r in journal.records()] == ["submit", "state"]

    def test_truncated_tail_degrades_to_last_good_frame(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.record_state("j00001-abababab", "running")
        journal.close()
        segment = journal.segments()[0]
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])  # tear the final frame
        records = journal.records()
        assert [r["rec"] for r in records] == ["submit"]

    def test_crc_mismatch_ends_the_segment(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.record_state("j00001-abababab", "done")
        journal.close()
        segment = journal.segments()[0]
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte of the last frame
        segment.write_bytes(bytes(data))
        assert [r["rec"] for r in journal.records()] == ["submit"]

    def test_unreadable_header_skips_the_segment(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.close()
        journal.segments()[0].write_bytes(b"not a journal segment")
        assert journal.records() == []
        assert journal.replay() == {}


class TestReplay:
    def records(self):
        return [
            {"rec": "submit", "job": "j1", "kind": "run", "hash": "aa",
             "cells": 1, "doc": {"spec": {}}, "unix": 1.0},
            {"rec": "state", "job": "j1", "status": "running",
             "unix": 2.0},
            {"rec": "submit", "job": "j2", "kind": "plan", "hash": "bb",
             "cells": 3, "doc": {"plan": {}}, "unix": 3.0},
            {"rec": "state", "job": "j1", "status": "done", "unix": 4.0},
        ]

    def table(self, jobs):
        return {
            job_id: (j.kind, j.status, j.error, j.n_cells)
            for job_id, j in jobs.items()
        }

    def test_fold(self):
        jobs = replay_records(self.records())
        assert self.table(jobs) == {
            "j1": ("run", "done", None, 1),
            "j2": ("plan", "queued", None, 3),
        }

    def test_replay_twice_is_identical(self):
        once = replay_records(self.records())
        twice = replay_records(self.records() + self.records())
        assert self.table(once) == self.table(twice)
        assert list(once) == list(twice)  # submission order preserved

    def test_terminal_states_absorb_later_transitions(self):
        records = self.records() + [
            {"rec": "state", "job": "j1", "status": "running", "unix": 9.0},
            {"rec": "state", "job": "j1", "status": "failed",
             "error": "late", "unix": 10.0},
        ]
        jobs = replay_records(records)
        assert jobs["j1"].status == "done"
        assert jobs["j1"].error is None

    def test_requeue_transition_is_replayed(self):
        records = self.records()[:2] + [
            {"rec": "state", "job": "j1", "status": "queued", "unix": 5.0},
        ]
        assert replay_records(records)["j1"].status == "queued"

    def test_state_for_unknown_job_is_dropped(self):
        jobs = replay_records(
            [{"rec": "state", "job": "ghost", "status": "done", "unix": 1}]
        )
        assert jobs == {}

    def test_duplicate_submit_keeps_the_first(self):
        records = self.records() + [
            {"rec": "submit", "job": "j1", "kind": "plan", "hash": "zz",
             "cells": 9, "doc": {"plan": {}}, "unix": 99.0},
        ]
        jobs = replay_records(records)
        assert jobs["j1"].kind == "run" and jobs["j1"].n_cells == 1


class TestCompactionAndGc:
    def test_compact_folds_to_one_segment(self, tmp_path):
        journal = make_journal(tmp_path, max_segment_bytes=256)
        for i in range(6):
            job = f"j{i + 1:05d}-abababab"
            submit(journal, job)
            journal.record_state(job, "done")
        assert len(journal.segments()) > 1
        survivors = [
            JournaledJob(id="j00006-abababab", kind="run",
                         content_hash="ab" * 32, n_cells=1,
                         doc={"spec": {"seed": 1}}, submitted_unix=1.0,
                         status="queued"),
        ]
        journal.compact(survivors)
        assert len(journal.segments()) == 1
        jobs = journal.replay()
        assert list(jobs) == ["j00006-abababab"]
        assert jobs["j00006-abababab"].status == "queued"
        # Post-compaction appends land in the compacted segment.
        journal.record_state("j00006-abababab", "done")
        journal.close()
        assert len(journal.segments()) == 1
        assert journal.replay()["j00006-abababab"].status == "done"

    def test_gc_removes_fully_applied_segments(self, tmp_path):
        journal = make_journal(tmp_path, max_segment_bytes=1)
        submit(journal, "j00001-abababab")  # rotates per record
        journal.record_state("j00001-abababab", "done")
        submit(journal, "j00002-abababab")  # stays live
        journal.close()
        before = len(journal.segments())
        removed = journal.gc()
        assert removed >= 1
        assert len(journal.segments()) == before - removed
        # The live job's history must survive GC.
        assert "j00002-abababab" in journal.replay()

    def test_stats_counts(self, tmp_path):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        journal.record_state("j00001-abababab", "done")
        submit(journal, "j00002-abababab")
        journal.close()
        stats = journal.stats()
        assert stats.segments == 1
        assert stats.records == 3
        assert stats.live_jobs == 1 and stats.finished_jobs == 1
        assert stats.bytes > 0
        assert stats.writes == 3 and stats.write_errors == 0
        doc = stats.to_dict()
        assert doc["records"] == 3 and doc["live_jobs"] == 1


class TestFaultSites:
    def test_write_raise_is_counted_not_fatal(self, tmp_path, monkeypatch):
        journal = make_journal(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "server.journal.write:raise")
        reset_faults()
        assert journal.append({"rec": "state", "job": "j1",
                               "status": "done", "unix": 1.0}) is False
        assert journal.write_errors == 1
        # One-shot: the next append lands.
        assert submit(journal, "j00001-abababab")
        journal.close()
        assert len(journal.records()) == 1

    def test_write_corrupt_tears_the_tail(self, tmp_path, monkeypatch):
        journal = make_journal(tmp_path)
        submit(journal, "j00001-abababab")
        monkeypatch.setenv("REPRO_FAULTS", "server.journal.write:corrupt")
        reset_faults()
        journal.record_state("j00001-abababab", "done")  # garbled frame
        monkeypatch.delenv("REPRO_FAULTS")
        reset_faults()
        journal.record_state("j00001-abababab", "running")  # after tear
        journal.close()
        # Replay stops at the garbled frame: the job is still queued.
        jobs = journal.replay()
        assert jobs["j00001-abababab"].status == "queued"

    def test_read_corrupt_degrades_to_prefix(self, tmp_path, monkeypatch):
        journal = make_journal(tmp_path)
        for i in range(6):
            submit(journal, f"j{i + 1:05d}-abababab")
        journal.close()
        monkeypatch.setenv("REPRO_FAULTS", "server.journal.read:corrupt")
        reset_faults()
        torn = journal.replay()
        # Truncation at half the segment loses the tail but the
        # surviving prefix replays cleanly (one-shot: only once).
        assert 0 < len(torn) < 6
        reset_faults()
        monkeypatch.delenv("REPRO_FAULTS")
        assert len(journal.replay()) == 6
