"""Streaming session API: equivalence, checkpointing, taps, injection.

The session layer's contract is *bit-identity*: however a run is
paused, stepped, observed, snapshot/restored (including through a JSON
byte round-trip), or forked, its final :class:`SimulationResult` must
equal the uninterrupted batch run's exactly.  These tests pin that
contract for every registered scheme on both engines, plus the facade
semantics (geometry, taps, injection, snapshot hygiene).
"""

import dataclasses
import json

import pytest

from repro.api import (
    SNAPSHOT_KIND,
    EpochEvent,
    MitigationEvent,
    Session,
    SessionError,
    open_session,
)
from repro.core.registry import scheme_names
from repro.experiments import ExperimentSpec, SchemeSpec, run_spec

ENGINES = ("batched", "scalar")

#: Small-but-eventful economy point: enough traffic that every scheme
#: refreshes, splits (CAT), and crosses an interior epoch boundary.
KNOBS = dict(workload="mum", scale=96.0, n_banks=2, n_intervals=2)


def spec_for(kind: str, engine: str, **overrides) -> ExperimentSpec:
    fields = dict(scheme=SchemeSpec(kind), engine=engine, **KNOBS)
    fields.update(overrides)
    return ExperimentSpec(**fields)


def json_cycle(doc: dict) -> dict:
    """A byte-level JSON round-trip (what a snapshot file goes through)."""
    return json.loads(json.dumps(doc))


class TestSessionEqualsBatch:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", scheme_names())
    def test_run_to_completion_bit_identical(self, kind, engine):
        spec = spec_for(kind, engine)
        direct = run_spec(spec)
        assert open_session(spec).result().to_dict() == direct.to_dict()

    def test_stepping_bit_identical(self):
        spec = spec_for("drcat", "batched")
        direct = run_spec(spec)
        session = open_session(spec)
        while not session.done:
            session.step(1234)
        assert session.result().to_dict() == direct.to_dict()

    def test_advance_partition_bit_identical(self):
        """Arbitrary time cuts, including mid-epoch, change nothing."""
        spec = spec_for("prcat", "batched")
        direct = run_spec(spec)
        session = open_session(spec)
        for fraction in (0.1, 0.37, 0.5, 0.93):
            session.advance(session.total_ns * fraction)
        assert session.result().to_dict() == direct.to_dict()


class TestSnapshotRestoreProperty:
    """Satellite: snapshot -> restore -> finish == uninterrupted run,
    for every registered scheme, on both engines, through JSON."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", scheme_names())
    def test_mid_run_checkpoint_bit_identical(self, kind, engine):
        spec = spec_for(kind, engine)
        direct = run_spec(spec)
        session = open_session(spec)
        session.advance(session.total_ns * 0.4)
        restored = Session.restore(json_cycle(session.snapshot()))
        assert restored.result().to_dict() == direct.to_dict()

    @pytest.mark.parametrize("kind", scheme_names())
    def test_repeated_checkpoint_cycles(self, kind):
        """Checkpoint/restore after every few thousand accesses."""
        spec = spec_for(kind, "batched")
        direct = run_spec(spec)
        session = open_session(spec)
        while not session.done:
            session.step(3000)
            session = Session.restore(json_cycle(session.snapshot()))
        assert session.result().to_dict() == direct.to_dict()

    def test_fork_independence(self):
        """One snapshot, two continuations: equal results, no aliasing."""
        spec = spec_for("drcat", "batched")
        session = open_session(spec)
        session.advance(session.total_ns / 2)
        snap = json_cycle(session.snapshot())
        fork_a, fork_b = Session.restore(snap), Session.restore(snap)
        fork_a.step(500)  # drive one fork ahead of the other
        assert fork_a.result().to_dict() == fork_b.result().to_dict()
        assert fork_a.result().to_dict() == run_spec(spec).to_dict()

    def test_checkpoint_before_first_step(self):
        spec = spec_for("sca", "batched")
        session = open_session(spec)
        restored = Session.restore(json_cycle(session.snapshot()))
        assert restored.result().to_dict() == run_spec(spec).to_dict()

    def test_attack_spec_checkpoint(self):
        spec = ExperimentSpec(
            scheme=SchemeSpec("sca"), workload="libq", kind="attack",
            attack_kernel="kernel01", attack_mode="heavy",
            scale=96.0, n_banks=1, n_intervals=2,
        )
        direct = run_spec(spec)
        session = open_session(spec)
        session.advance(session.total_ns / 2)
        restored = Session.restore(json_cycle(session.snapshot()))
        assert restored.result().to_dict() == direct.to_dict()

    def test_engine_mismatch_rejected(self):
        session = open_session(spec_for("sca", "batched"))
        session.step(100)
        snap = session.snapshot()
        snap["spec"]["engine"] = "scalar"
        with pytest.raises(ValueError, match="engine"):
            Session.restore(snap)

    def test_bad_snapshot_rejected(self):
        with pytest.raises(SessionError, match=SNAPSHOT_KIND):
            Session.restore({"kind": "something-else"})
        with pytest.raises(SessionError, match="snapshot_version"):
            Session.restore({"kind": SNAPSHOT_KIND, "snapshot_version": 99})

    def test_save_load_file_round_trip(self, tmp_path):
        spec = spec_for("drcat", "scalar")
        direct = run_spec(spec)
        session = open_session(spec)
        session.step(5000)
        path = session.save(tmp_path / "snap.json")
        assert Session.load(path).result().to_dict() == direct.to_dict()


class TestSessionFacade:
    def test_geometry(self):
        session = open_session(spec_for("sca", "batched"))
        assert session.total_ns == pytest.approx(
            KNOBS["n_intervals"] * session.epoch_ns
        )
        assert not session.done
        assert session.accesses_served == 0

    def test_step_serves_exactly_n(self):
        session = open_session(spec_for("sca", "batched"))
        assert session.step(100) == 100
        assert session.accesses_served == 100

    def test_advance_respects_time(self):
        session = open_session(spec_for("sca", "batched"))
        session.advance(session.total_ns / 4)
        assert 0 < session.position_ns < session.total_ns / 4
        assert not session.done

    def test_metrics_partial_then_final(self):
        spec = spec_for("drcat", "batched")
        session = open_session(spec)
        session.advance(session.total_ns / 2)
        partial = session.metrics()
        assert 0 < partial.accesses < run_spec(spec).totals.accesses
        final = session.result()
        assert session.metrics() == final.totals

    def test_open_session_overrides(self):
        session = open_session(spec_for("sca", "batched"), n_intervals=4)
        assert session.spec.n_intervals == 4

    def test_open_session_accepts_spec_dict(self):
        doc = spec_for("sca", "batched").to_dict()
        assert open_session(doc).spec == spec_for("sca", "batched")


class TestObserverTaps:
    def test_on_epoch_stream(self):
        spec = spec_for("drcat", "batched", n_intervals=3)
        session = open_session(spec)
        events: list[EpochEvent] = []
        session.on_epoch(events.append)
        result = session.result()
        assert [e.epoch for e in events] == [1, 2, 3]
        # Deltas telescope to the final cumulative totals.
        assert sum(e.delta.accesses for e in events) == result.totals.accesses
        assert sum(
            e.delta.rows_refreshed for e in events
        ) == result.totals.rows_refreshed
        assert events[-1].totals.accesses == result.totals.accesses
        # Each delta covers one epoch.
        assert events[0].delta.elapsed_ns == pytest.approx(session.epoch_ns)

    def test_on_mitigation_stream(self):
        session = open_session(spec_for("sca", "batched"))
        events: list[MitigationEvent] = []
        session.on_mitigation(events.append)
        result = session.result()
        assert len(events) == result.totals.refresh_commands
        assert sum(e.rows for e in events) == result.totals.rows_refreshed
        assert all(e.time_ns >= 0 and e.bank in (0, 1) for e in events)

    def test_taps_do_not_change_numbers(self):
        spec = spec_for("prcat", "scalar")
        direct = run_spec(spec)
        session = open_session(spec)
        session.on_epoch(lambda e: None)
        session.on_mitigation(lambda e: None)
        assert session.result().to_dict() == direct.to_dict()

    def _epoch2_delta(self, session):
        events = []
        session.on_epoch(events.append)
        session.result()
        return {
            e.epoch: (e.delta.accesses, e.delta.rows_refreshed,
                      e.delta.stall_ns)
            for e in events
        }[2]

    def test_resumed_session_deltas_cover_whole_epochs(self):
        """EpochEvent.delta spans the full epoch even when the session
        was restored (or the tap registered) mid-epoch."""
        spec = spec_for("drcat", "batched")
        reference = self._epoch2_delta(open_session(spec))
        # Resume mid-epoch-2: the epoch-2 delta must still be whole.
        resumed = open_session(spec)
        resumed.advance(resumed.epoch_ns * 1.5)
        resumed = Session.restore(json_cycle(resumed.snapshot()))
        assert self._epoch2_delta(resumed) == reference
        # Tap registered mid-epoch-2: same guarantee.
        late = open_session(spec)
        late.advance(late.epoch_ns * 1.5)
        assert self._epoch2_delta(late) == reference

    def test_snapshot_inside_epoch_tap(self):
        """Epoch boundaries are clean checkpoint cut points."""
        spec = spec_for("drcat", "batched")
        direct = run_spec(spec)
        grabbed: list[dict] = []
        session = open_session(spec)
        session.on_epoch(
            lambda e: grabbed.append(json_cycle(session.snapshot()))
            if e.epoch == 1 else None
        )
        session.result()
        (snap,) = grabbed
        assert Session.restore(snap).result().to_dict() == direct.to_dict()


class TestInjection:
    def test_inject_adds_traffic(self):
        spec = spec_for("drcat", "batched")
        base = run_spec(spec)
        session = open_session(spec)
        session.advance(session.total_ns / 3)
        injected = session.inject([7] * 5000)
        result = session.result()
        assert injected == 5000
        assert result.totals.accesses == base.totals.accesses + 5000
        assert result.totals.rows_refreshed > base.totals.rows_refreshed

    def test_inject_attack_triggers_refreshes(self):
        spec = spec_for("sca", "batched", workload="libq")
        base = run_spec(spec)
        session = open_session(spec)
        session.advance(session.total_ns / 3)
        n = session.inject_attack("kernel03", "heavy")
        result = session.result()
        assert n > 0
        assert result.totals.accesses == base.totals.accesses + n
        assert result.totals.rows_refreshed > base.totals.rows_refreshed

    @pytest.mark.parametrize("engine", ENGINES)
    def test_injection_then_checkpoint(self, engine):
        """Injected traffic survives snapshot/restore bit-identically."""
        def run(checkpoint: bool):
            session = open_session(spec_for("drcat", engine))
            session.advance(session.total_ns / 3)
            session.inject_attack("kernel05", "medium", seed_salt=7)
            if checkpoint:
                session.step(999)
                session = Session.restore(json_cycle(session.snapshot()))
            return session.result()

        assert run(True).to_dict() == run(False).to_dict()

    def test_inject_rejects_bad_rows_and_banks(self):
        session = open_session(spec_for("sca", "batched"))
        with pytest.raises(ValueError, match="bank"):
            session.inject([1], bank=99)
        with pytest.raises(ValueError, match="rows"):
            session.inject([10 ** 9])

    def test_inject_rejects_out_of_window_times(self):
        session = open_session(spec_for("sca", "batched"))
        with pytest.raises(ValueError, match="interval window"):
            session.inject([1], times_ns=[session.total_ns * 10])


class TestSessionModes:
    """REPRO_SESSION_MODE routes run_spec through the session paths."""

    def test_modes_bit_identical(self, monkeypatch):
        spec = spec_for("drcat", "batched")
        results = {}
        for mode in ("direct", "session", "checkpoint"):
            monkeypatch.setenv("REPRO_SESSION_MODE", mode)
            results[mode] = run_spec(spec).to_dict()
        assert results["direct"] == results["session"] == results["checkpoint"]

    def test_invalid_mode_fails_clearly(self, monkeypatch):
        from repro.report.config import EnvConfigError

        monkeypatch.setenv("REPRO_SESSION_MODE", "warp")
        with pytest.raises(EnvConfigError, match="REPRO_SESSION_MODE"):
            run_spec(spec_for("sca", "batched"))

    def test_non_direct_mode_bypasses_cache(self, tmp_path, monkeypatch):
        from repro.experiments import ResultCache, run_plan

        spec = spec_for("sca", "batched")
        cache = ResultCache(tmp_path)
        monkeypatch.setenv("REPRO_SESSION_MODE", "checkpoint")
        run_plan([spec], cache=cache)
        assert cache.hits == 0 and cache.misses == 0
        assert not list(tmp_path.rglob("*.json"))


class TestSpecCheckpointConfig:
    def test_checkpoint_every_round_trips_and_is_cosmetic(self):
        spec = spec_for("sca", "batched")
        tagged = dataclasses.replace(spec, checkpoint_every=2)
        assert ExperimentSpec.from_dict(tagged.to_dict()) == tagged
        # Cosmetic for the numbers: hashing (and hence caching) ignores it.
        assert tagged.content_hash() == spec.content_hash()

    def test_checkpoint_every_validated(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            spec_for("sca", "batched", checkpoint_every=0)


class TestCachePartialRuns:
    def test_snapshot_keyed_by_spec_and_tag(self, tmp_path):
        from repro.experiments import ResultCache

        cache = ResultCache(tmp_path)
        spec = spec_for("drcat", "batched")
        direct = run_spec(spec)
        session = open_session(spec)
        session.advance(session.total_ns / 2)
        cache.put_snapshot(spec, "half", session.snapshot())
        # A differently-labelled writer of the same experiment hits it.
        relabelled = dataclasses.replace(
            spec, scheme=SchemeSpec("drcat", label="DRCAT_64")
        )
        stored = cache.get_snapshot(relabelled, "half")
        assert stored is not None
        assert Session.restore(stored).result().to_dict() == direct.to_dict()
        # Unknown tags and different specs miss.
        assert cache.get_snapshot(spec, "other-tag") is None
        assert cache.get_snapshot(
            dataclasses.replace(spec, seed=1), "half"
        ) is None
