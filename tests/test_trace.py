"""Tests for the USIMM-style trace format."""

import io

import pytest

from repro.cpu.trace import TraceRecord, load_trace, read_trace, save_trace, write_trace


class TestRecord:
    def test_roundtrip_with_pc(self):
        rec = TraceRecord(12, "R", 0xDEADBEEF, pc=0x400100)
        assert TraceRecord.from_line(rec.to_line()) == rec

    def test_roundtrip_without_pc(self):
        rec = TraceRecord(0, "W", 4096)
        assert TraceRecord.from_line(rec.to_line()) == rec

    def test_parses_decimal_and_hex(self):
        rec = TraceRecord.from_line("5 R 4096")
        assert rec.address == 4096
        rec = TraceRecord.from_line("5 R 0x1000")
        assert rec.address == 4096

    def test_lowercase_op_accepted(self):
        assert TraceRecord.from_line("1 r 0x10").op == "R"

    def test_rejects_malformed_lines(self):
        for line in ("", "1", "1 R", "1 R 0x10 0x20 extra", "x R 0x10"):
            with pytest.raises(ValueError):
                TraceRecord.from_line(line)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, "R", 0)
        with pytest.raises(ValueError):
            TraceRecord(0, "X", 0)
        with pytest.raises(ValueError):
            TraceRecord(0, "R", -5)


class TestStreams:
    def test_write_read_roundtrip(self):
        records = [
            TraceRecord(i, "R" if i % 2 else "W", i * 64, pc=i * 4)
            for i in range(100)
        ]
        buf = io.StringIO()
        assert write_trace(records, buf) == 100
        buf.seek(0)
        assert list(read_trace(buf)) == records

    def test_read_skips_comments_and_blanks(self):
        buf = io.StringIO("# header\n\n1 R 0x40\n   \n2 W 0x80\n")
        records = list(read_trace(buf))
        assert len(records) == 2

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        records = [TraceRecord(3, "R", 128), TraceRecord(0, "W", 256)]
        assert save_trace(records, path) == 2
        assert load_trace(path) == records
