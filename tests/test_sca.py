"""Tests for Static Counter Assignment (SCA, Section III-B)."""

import pytest

from repro.core.sca import SCAScheme


class TestGroupMapping:
    def test_group_size(self):
        scheme = SCAScheme(65536, 32768, 64)
        assert scheme.group_size == 1024

    def test_rejects_non_dividing_counters(self):
        with pytest.raises(ValueError):
            SCAScheme(1000, 100, 64)

    def test_rejects_zero_counters(self):
        with pytest.raises(ValueError):
            SCAScheme(1024, 100, 0)

    def test_counter_per_row_degenerate(self):
        scheme = SCAScheme(64, 10, 64)
        assert scheme.group_size == 1


class TestCounting:
    def test_accesses_accumulate_in_group(self):
        scheme = SCAScheme(1024, 100, 8)  # groups of 128
        for row in (0, 1, 127):
            scheme.access(row)
        assert scheme.counter_value(0) == 3
        assert scheme.counter_value(1) == 0

    def test_different_groups_independent(self):
        scheme = SCAScheme(1024, 100, 8)
        scheme.access(0)
        scheme.access(128)
        scheme.access(1023)
        assert scheme.counter_value(0) == 1
        assert scheme.counter_value(1) == 1
        assert scheme.counter_value(7) == 1


class TestRefresh:
    def test_refreshes_group_plus_adjacent(self):
        scheme = SCAScheme(1024, 10, 8)
        cmds = []
        for _ in range(10):
            cmds.extend(scheme.access(300))  # group 2: rows 256..383
        assert len(cmds) == 1
        cmd = cmds[0]
        assert cmd.low == 255
        assert cmd.high == 384
        assert cmd.row_count(1024) == 130  # N/M + 2

    def test_counter_resets_after_refresh(self):
        scheme = SCAScheme(1024, 10, 8)
        for _ in range(10):
            scheme.access(300)
        assert scheme.counter_value(2) == 0

    def test_first_group_clamps_low(self):
        scheme = SCAScheme(1024, 10, 8)
        cmds = []
        for _ in range(10):
            cmds.extend(scheme.access(5))
        assert cmds[0].row_count(1024) == 129  # no row below 0

    def test_last_group_clamps_high(self):
        scheme = SCAScheme(1024, 10, 8)
        cmds = []
        for _ in range(10):
            cmds.extend(scheme.access(1000))
        assert cmds[0].row_count(1024) == 129

    def test_refresh_rate_matches_threshold(self):
        scheme = SCAScheme(1024, 50, 4)
        total = 0
        for _ in range(500):
            total += len(scheme.access(10))
        assert total == 10  # 500 / 50

    def test_stats_track_rows(self):
        scheme = SCAScheme(1024, 10, 8)
        for _ in range(25):
            scheme.access(300)
        assert scheme.stats.refresh_commands == 2
        assert scheme.stats.rows_refreshed == 260
        assert scheme.stats.activations == 25


class TestEpochReset:
    def test_interval_boundary_resets_counts(self):
        scheme = SCAScheme(1024, 100, 8)
        for _ in range(60):
            scheme.access(5)
        scheme.on_interval_boundary()
        assert scheme.counter_value(0) == 0
        assert scheme.stats.resets == 1

    def test_counters_in_use(self):
        assert SCAScheme(1024, 100, 8).counters_in_use == 8
