#!/usr/bin/env python3
"""Watch DRCAT reconfigure as a workload's hot set drifts.

Feeds a single CounterTree a stream whose hot cluster relocates twice,
printing the tree's depth histogram and the hot-row group size after
each phase — the Section V-B behaviour: weights identify newly hot
regions, cold sibling pairs are merged, and the freed counters sharpen
resolution around the new hot set without a periodic reset.
"""

import numpy as np

from repro.core.counter_tree import CounterTree
from repro.core.thresholds import SplitThresholds

N_ROWS = 65536
REFRESH_THRESHOLD = 2048
M = 64
L = 11


def describe(tree, hot_row, label):
    state = tree.counter_state(tree.lookup(hot_row))
    size = state["high"] - state["low"] + 1
    hist = dict(sorted(tree.depth_histogram().items()))
    print(f"{label}")
    print(f"  hot row {hot_row}: level {state['level']}, group of {size} rows")
    print(f"  depth histogram (level: #counters): {hist}")
    print(
        f"  lifetime splits={tree.total_splits} merges={tree.total_merges} "
        f"refresh commands={tree.total_refresh_commands}\n"
    )


def run_phase(tree, rng, hot_row, n_accesses=50_000, hot_fraction=0.6):
    for _ in range(n_accesses):
        if rng.random() < hot_fraction:
            row = hot_row
        else:
            row = int(rng.integers(0, N_ROWS))
        tree.access(row)


def main() -> None:
    thresholds = SplitThresholds.create(REFRESH_THRESHOLD, M, L)
    tree = CounterTree(N_ROWS, thresholds, track_weights=True)
    rng = np.random.default_rng(2024)

    print(
        f"DRCAT tree: {M} counters, up to {L} levels, T={REFRESH_THRESHOLD}, "
        f"bank of {N_ROWS} rows"
    )
    print(f"split thresholds: {thresholds.values}\n")
    describe(tree, 1000, "Initial (balanced pre-split):")

    for phase, hot_row in enumerate((1000, 40_000, 61_234), start=1):
        run_phase(tree, rng, hot_row)
        describe(tree, hot_row, f"After phase {phase} (hot row {hot_row}):")
        tree.check_invariants()

    print(
        "Each relocation is absorbed by merge/split reconfiguration: the\n"
        "old hot region's deep counters are reclaimed and the new hot row\n"
        "ends up in a small group again — no epoch reset required."
    )


if __name__ == "__main__":
    main()
