#!/usr/bin/env python3
"""Quickstart: compare crosstalk-mitigation schemes on one workload.

Runs the paper's four schemes (PRA, SCA, PRCAT, DRCAT) on the
blackscholes-like workload and prints CMRPO (power overhead relative to
regular refresh) and ETO (execution-time overhead) for each — the two
headline metrics of the paper.

Usage::

    python examples/quickstart.py [workload]

``workload`` is any Figure 8 label (comm1..5, swapt, fluid, str, black,
ferret, face, freq, MTC, MTF, libq, leslie, mum, tigr); default black.
"""

import sys

from repro import ExperimentSpec, Plan, SchemeSpec, run_plan
from repro.sim.metrics import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "black"
    base = ExperimentSpec(
        scheme=SchemeSpec("drcat"),
        workload=workload,
        refresh_threshold=32768,
        scale=24,
        n_banks=1,
        n_intervals=2,
    )
    plan = Plan.grid(base, scheme=[
        SchemeSpec.create("pra", "PRA (p=0.002)"),
        SchemeSpec.create("sca", "SCA, 64 counters", n_counters=64),
        SchemeSpec.create("sca", "SCA, 128 counters", n_counters=128),
        SchemeSpec.create("prcat", "PRCAT, 64 counters", n_counters=64),
        SchemeSpec.create("drcat", "DRCAT, 64 counters", n_counters=64),
    ])
    rows = []
    for spec, result in zip(plan.specs, run_plan(plan)):
        label = spec.scheme.display_label
        breakdown = result.cmrpo_breakdown
        rows.append(
            {
                "scheme": label,
                "CMRPO %": 100 * result.cmrpo,
                "ETO %": 100 * result.eto,
                "victim rows/interval": (
                    result.totals.rows_refreshed_per_bank_interval
                ),
                "dyn mW": breakdown.dynamic_mw,
                "static mW": breakdown.static_mw,
                "refresh mW": breakdown.refresh_mw,
            }
        )
    print(f"Wordline-crosstalk mitigation on workload {workload!r} (T=32K)\n")
    print(
        format_table(
            rows,
            [
                "scheme",
                "CMRPO %",
                "ETO %",
                "victim rows/interval",
                "dyn mW",
                "static mW",
                "refresh mW",
            ],
        )
    )
    print(
        "\nThe adaptive tree schemes (PRCAT/DRCAT) cut the refresh power "
        "overhead\nseveral-fold versus the static (SCA) and probabilistic "
        "(PRA) baselines\nwhile keeping execution-time overhead negligible "
        "— the paper's headline result."
    )


if __name__ == "__main__":
    main()
