#!/usr/bin/env python3
"""Rowhammer attack vs defense: watch a CAT confine an attacker.

Drives a DRCAT-protected bank with a malicious kernel-attack stream
(Section VIII-D of the paper) and shows, step by step:

1. the rowhammer-safety oracle — no row ever accumulates the refresh
   threshold of activations without its neighbours being refreshed;
2. how the adaptive tree zooms in on the hammered rows (group sizes
   around the attack targets shrink to a few rows);
3. the efficiency gap: rows refreshed by DRCAT vs SCA under the same
   attack.

Usage::

    python examples/rowhammer_defense.py [heavy|medium|light]
"""

import sys

from repro.core.base import ActivationLedger
from repro.core.drcat import DRCATScheme
from repro.core.sca import SCAScheme
from repro.workloads.attacks import get_kernel, attack_stream

N_ROWS = 65536
REFRESH_THRESHOLD = 2048   # scaled-down threshold for a fast demo
N_ACCESSES = 60_000


def run_defended(scheme, rows):
    """Replay the attack; return (max unsafe pressure, rows refreshed)."""
    ledger = ActivationLedger(scheme.n_rows)
    worst = 0
    for row in rows:
        row = int(row)
        ledger.activate(row)
        for cmd in scheme.access(row):
            c = cmd.clamped(scheme.n_rows)
            ledger.refresh_range(c.low, c.high)
        worst = max(worst, ledger.max_pressure())
    return worst, scheme.stats.rows_refreshed


def main() -> None:
    mode = sys.argv[1] if len(sys.argv) > 1 else "heavy"
    kernel = get_kernel("kernel03")
    targets = kernel.pick_targets(N_ROWS, bank=0)
    rows = attack_stream(kernel, mode, N_ROWS, N_ACCESSES, bank=0)
    print(f"Attack kernel {kernel.name!r}, mode={mode}")
    print(f"Target rows (Gaussian-placed): {list(targets)}\n")

    drcat = DRCATScheme(N_ROWS, REFRESH_THRESHOLD, n_counters=64, max_levels=11)
    sca = SCAScheme(N_ROWS, REFRESH_THRESHOLD, n_counters=64)

    worst_drcat, rows_drcat = run_defended(drcat, rows)
    worst_sca, rows_sca = run_defended(sca, rows)

    print("Rowhammer-safety oracle (max unrefreshed activations of any row):")
    print(f"  refresh threshold T = {REFRESH_THRESHOLD}")
    print(f"  DRCAT worst pressure = {worst_drcat}  (safe: <= T)")
    print(f"  SCA   worst pressure = {worst_sca}  (safe: <= T)\n")
    assert worst_drcat <= REFRESH_THRESHOLD
    assert worst_sca <= REFRESH_THRESHOLD

    print("Adaptive tree resolution around the attack targets:")
    for target in targets:
        state = drcat.tree.counter_state(drcat.tree.lookup(int(target)))
        size = state["high"] - state["low"] + 1
        print(
            f"  row {int(target):6d}: counter level {state['level']:2d}, "
            f"group of {size} rows (SCA group: {N_ROWS // 64} rows)"
        )

    print("\nDefense cost (victim rows refreshed during the attack):")
    print(f"  DRCAT_64: {rows_drcat:8d} rows")
    print(f"  SCA_64:   {rows_sca:8d} rows")
    print(
        f"\nDRCAT confines the attack with {rows_sca / max(1, rows_drcat):.1f}x "
        "fewer refreshed rows — Section VIII-D's conclusion."
    )


if __name__ == "__main__":
    main()
