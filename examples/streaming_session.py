#!/usr/bin/env python3
"""Streaming session tour: watch, attack, checkpoint, fork, resume.

Demonstrates the ``repro.api`` session layer on one DRCAT run:

1. stream per-epoch metrics out of a live simulation (observer taps);
2. inject a rowhammer kernel burst mid-run and watch the mitigation
   engine absorb it;
3. checkpoint the perturbed run to a JSON document, fork it twice, and
   show both forks (and the original) finish bit-identically.

Usage::

    python examples/streaming_session.py [workload]
"""

import json
import sys

from repro import ExperimentSpec, SchemeSpec, Session, open_session


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "libq"
    spec = ExperimentSpec(
        scheme=SchemeSpec.create("drcat", n_counters=64),
        workload=workload,
        refresh_threshold=32768,
        scale=48,
        n_banks=1,
        n_intervals=4,
    )

    print(f"Streaming DRCAT over {workload!r}, "
          f"{spec.n_intervals} x 64 ms epochs\n")
    session = open_session(spec)

    @session.on_epoch
    def print_epoch(event) -> None:
        d = event.delta
        print(f"  epoch {event.epoch}: {d.accesses:>7} accesses, "
              f"{d.refresh_commands:>4} refresh cmds, "
              f"{d.rows_refreshed:>6} victim rows, "
              f"eto {100 * d.eto:.4f}%")

    refreshes = []
    session.on_mitigation(refreshes.append)

    # Run the first half benignly, then hammer.
    session.advance(session.total_ns / 2)
    quiet = len(refreshes)
    injected = session.inject_attack("kernel03", "heavy")
    print(f"\n  >> injected a {injected}-access kernel03 attack burst "
          "at mid-run <<\n")

    # Checkpoint the perturbed run and fork it.
    snapshot = json.loads(json.dumps(session.snapshot()))
    fork_a = Session.restore(snapshot)
    fork_b = Session.restore(snapshot)
    fork_a.step(10_000)  # drive one fork ahead; it must not matter

    result = session.result()
    print(f"\nfinal: CMRPO {100 * result.cmrpo:.3f}%  "
          f"ETO {100 * result.eto:.4f}%  "
          f"({result.totals.rows_refreshed} victim rows, "
          f"{len(refreshes) - quiet} refresh commands after the attack "
          f"vs {quiet} before)")

    same_a = fork_a.result().to_dict() == result.to_dict()
    same_b = fork_b.result().to_dict() == result.to_dict()
    print(f"forked continuations bit-identical to the original: "
          f"{same_a and same_b}")


if __name__ == "__main__":
    main()
