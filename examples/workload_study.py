#!/usr/bin/env python3
"""Mini evaluation: sweep several workloads and thresholds like Fig. 8/12.

Runs a reduced version of the paper's evaluation matrix — a sample of
workloads from each suite, two refresh thresholds, all four schemes —
and prints per-suite mean CMRPO plus the iso-area comparison the paper
uses (PRCAT_64 vs SCA_128).

Usage::

    python examples/workload_study.py [scale]

``scale`` trades fidelity for speed (default 32; the benchmarks use 24
and lower is closer to full scale).
"""

import sys

from repro.experiments import ExperimentSpec, Plan, SchemeSpec
from repro.sim.metrics import format_table
from repro.sim.runner import sweep, suite_means
from repro.workloads.suites import SUITES

SAMPLE = ("comm1", "black", "face", "libq", "mum")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 32.0
    for threshold, pra_p in ((32768, 0.002), (16384, 0.003)):
        base = ExperimentSpec(
            scheme=SchemeSpec("drcat"),
            workload=SAMPLE[0],
            refresh_threshold=threshold,
            scale=scale,
            n_banks=1,
            n_intervals=2,
        )
        plan = Plan.grid(
            base,
            workload=list(SAMPLE),
            scheme=[
                SchemeSpec.create("pra", "pra", probability=pra_p),
                SchemeSpec.create("sca", "sca", n_counters=128),
                SchemeSpec("prcat"),
                SchemeSpec("drcat"),
            ],
        )
        results = sweep(plan)
        rows = []
        for workload in SAMPLE:
            suite = next(s for s, names in SUITES.items() if workload in names)
            rows.append(
                {
                    "workload": f"{workload} ({suite})",
                    "PRA %": 100 * results[(workload, "pra")].cmrpo,
                    "SCA_128 %": 100 * results[(workload, "sca")].cmrpo,
                    "PRCAT_64 %": 100 * results[(workload, "prcat")].cmrpo,
                    "DRCAT_64 %": 100 * results[(workload, "drcat")].cmrpo,
                }
            )
        means = suite_means(results, "cmrpo")
        rows.append(
            {
                "workload": "MEAN",
                "PRA %": 100 * means["pra"],
                "SCA_128 %": 100 * means["sca"],
                "PRCAT_64 %": 100 * means["prcat"],
                "DRCAT_64 %": 100 * means["drcat"],
            }
        )
        print(f"\nCMRPO at T={threshold // 1024}K (PRA p={pra_p}):")
        print(
            format_table(
                rows,
                ["workload", "PRA %", "SCA_128 %", "PRCAT_64 %", "DRCAT_64 %"],
            )
        )
    print(
        "\nNote the paper's iso-area framing: PRCAT_64 occupies the same "
        "area as SCA_128\n(Table II), yet refreshes far fewer rows on "
        "skewed workloads."
    )


if __name__ == "__main__":
    main()
