#!/usr/bin/env python3
"""Full-pipeline trace replay: MSC-style trace file -> protected DRAM.

Synthesises a USIMM/MSC-format memory trace from a workload model,
writes it to disk, reads it back, and replays it through the complete
stack — ROB front end, physical address mapping, closed-page FR-FCFS
controller, and a mitigation scheme per bank — reporting refresh
activity and mitigation-induced stall for each scheme.

This is the input path a user with *real* MSC traces would use:
``repro.cpu.trace.load_trace`` accepts the championship's text format
directly.

Usage::

    python examples/trace_replay.py [workload] [n_records]
"""

import sys
import tempfile

from repro.cpu.trace import load_trace, save_trace
from repro.dram.config import SystemConfig
from repro.sim.metrics import format_table
from repro.sim.replay import replay_trace, synthesize_trace
from repro.workloads.suites import get_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "black"
    n_records = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000
    # A small-bank config keeps the demo's refresh threshold meaningful
    # at this trace length.
    config = SystemConfig(rows_per_bank=4096)
    threshold = 512

    spec = get_workload(workload)
    records = synthesize_trace(spec, config, n_records)
    with tempfile.NamedTemporaryFile("w", suffix=".trace", delete=False) as f:
        path = f.name
    save_trace(records, path)
    loaded = load_trace(path)
    print(
        f"Synthesised {len(loaded)} trace records for {workload!r} "
        f"-> {path}"
    )
    print(f"First records: {[r.to_line() for r in loaded[:3]]}\n")

    rows = []
    for scheme in ("pra", "sca", "prcat", "drcat", "ccache"):
        result = replay_trace(
            loaded,
            config,
            scheme=scheme,
            counters=32,
            max_levels=9,
            refresh_threshold=threshold,
            pra_probability=0.002,
        )
        rows.append(
            {
                "scheme": scheme,
                "activations": result.activations,
                "refreshes": result.refresh_commands,
                "victim rows": result.rows_refreshed,
                "stall us": result.stall_ns / 1e3,
                "ETO %": 100 * result.eto,
            }
        )
    print(
        format_table(
            rows,
            ["scheme", "activations", "refreshes", "victim rows",
             "stall us", "ETO %"],
        )
    )
    print(
        "\nNote how the CAT schemes refresh far fewer victim rows than "
        "SCA at equal\ncounter budget, and how the counter cache "
        "(ccache) achieves exact counting\nat the cost of per-access "
        "cache traffic (see benchmarks/bench_counter_cache.py)."
    )


if __name__ == "__main__":
    main()
